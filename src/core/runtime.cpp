#include "core/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"

namespace hs {

namespace {

Topology make_topology(const RuntimeConfig& config) {
  const std::size_t devices =
      config.platform.domains.empty() ? 0 : config.platform.domains.size() - 1;
  if (config.domain_links.empty()) {
    return Topology(devices, config.device_link);
  }
  require(config.domain_links.size() == devices,
          "domain_links must have one entry per non-host domain");
  return Topology(config.domain_links);
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

constexpr std::uint64_t kNoSeqLimit =
    std::numeric_limits<std::uint64_t>::max();

}  // namespace

Runtime::Runtime(RuntimeConfig config, std::unique_ptr<Executor> executor)
    : config_(std::move(config)),
      executor_(std::move(executor)),
      topology_(make_topology(config_)),
      pool_(config_.transfer_pool_enabled),
      injector_(config_.faults) {
  require(executor_ != nullptr, "runtime needs an executor");
  require(!config_.platform.domains.empty(), "platform needs a host domain");
  if (config_.transfer_pool_enabled) {
    // COI pre-allocates its 2 MB buffer pool at init, which is what makes
    // steady-state allocation overhead "negligible" (§III).
    pool_.warm(64);
  }
  require(config_.platform.domains.front().kind == DomainKind::host,
          "domain 0 must be the host");
  for (std::size_t i = 0; i < config_.platform.domains.size(); ++i) {
    domains_.emplace_back(DomainId{static_cast<std::uint32_t>(i)},
                          config_.platform.domains[i]);
  }
  health_.resize(domains_.size());
  next_transfer_seq_ =
      std::vector<std::atomic<std::uint64_t>>(domains_.size());
  dep_legacy_ = config_.dep_legacy_scan || env_flag("HS_DEP_LEGACY");
  dep_oracle_ = config_.dep_oracle || env_flag("HS_DEP_ORACLE");
  coherence_track_ = config_.coherence.track && !env_flag("HS_COHERENCE_OFF");
  coherence_elide_ = coherence_track_ && config_.coherence.elide &&
                     !env_flag("HS_NO_ELIDE");
  coherence_oracle_ = config_.coherence.oracle ||
                      env_flag("HS_COHERENCE_ORACLE");
  evict_enabled_ = config_.eviction && !env_flag("HS_NO_EVICT");
  executor_->attach(*this);
}

Runtime::~Runtime() {
  // Each synchronize reports at most one queued sink error; drain the
  // whole queue (a teardown error cannot propagate from a destructor).
  for (int i = 0; i < 64; ++i) {
    try {
      synchronize();
      break;
    } catch (const std::exception& e) {
      log_error("runtime destroyed with pending sink error: %s", e.what());
    }
  }
  // Executors own threads that may call back into the runtime; they must
  // die before runtime state does.
  executor_.reset();
}

void Runtime::lock_counted(std::mutex& m) const {
  if (m.try_lock()) {
    return;
  }
  stats_.lock_shard_contention.fetch_add(1, std::memory_order_relaxed);
  m.lock();
}

Runtime::DepState* Runtime::dep_find(ActionId id) {
  DepShard& shard = shard_for(id);
  lock_counted(shard.mu);
  const std::lock_guard<std::mutex> lock(shard.mu, std::adopt_lock);
  const auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : &it->second;
}

const Domain& Runtime::domain(DomainId id) const {
  require(id.value < domains_.size(), "unknown domain", Errc::not_found);
  return domains_[id.value];
}

std::vector<DomainId> Runtime::domains_of_kind(DomainKind kind) const {
  std::vector<DomainId> out;
  for (const Domain& d : domains_) {
    if (d.desc().kind == kind) {
      out.push_back(d.id());
    }
  }
  return out;
}

bool Runtime::domain_alive(DomainId id) const {
  require(id.value < domains_.size(), "unknown domain", Errc::not_found);
  return domains_[id.value].alive();
}

void Runtime::require_domain_alive(DomainId id) const {
  require(domains_[id.value].alive(),
          "domain " + std::to_string(id.value) + " was lost",
          Errc::device_lost);
}

void Runtime::mark_domain_lost(DomainId id) {
  {
    const std::scoped_lock lock(mutex_);
    require(id.value < domains_.size(), "unknown domain", Errc::not_found);
    require(id != kHostDomain, "the host domain cannot be lost");
    if (!domains_[id.value].alive()) {
      return;  // already declared; the loss is reported exactly once
    }
    domains_[id.value].mark_lost();
    stats_.domains_lost.fetch_add(1, std::memory_order_relaxed);
    if (!health_[id.value].degraded) {
      stats_.links_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    health_[id.value].lose();
    push_pending_error(std::make_exception_ptr(
        Error(Errc::device_lost,
              "domain " + std::to_string(id.value) + " lost (" +
                  domains_[id.value].desc().name + ")")));
  }
  // Fail every in-flight action on the dead domain's streams. Claiming
  // under each stream's lock makes this exactly-once: a late `done` from
  // an executor thread finds the claim and becomes a no-op. Enqueues
  // racing this loop already see the dead domain (alive is atomic and
  // was cleared above).
  std::vector<std::shared_ptr<ActionRecord>> victims;
  {
    std::shared_lock streams(streams_mutex_);
    for (const auto& sp : streams_) {
      StreamState& s = *sp;
      if (!s.alive.load(std::memory_order_acquire) || s.domain != id) {
        continue;
      }
      lock_counted(s.mu);
      const std::lock_guard<std::mutex> sl(s.mu, std::adopt_lock);
      for (const auto& rec : s.window) {
        if (rec->state == ActionRecord::State::done || rec->claimed) {
          continue;
        }
        rec->claimed = true;
        rec->cancelled = true;
        if (rec->state == ActionRecord::State::pending) {
          // Block the successor-unblocking path from dispatching it.
          rec->state = ActionRecord::State::dispatched;
        }
        stats_.actions_failed.fetch_add(1, std::memory_order_relaxed);
        victims.push_back(rec);
      }
    }
  }
  log_error("domain %u declared lost; %zu in-flight actions failed", id.value,
            victims.size());
  for (auto& victim : victims) {
    finish_action(std::move(victim));
  }
}

Status Runtime::evacuate(BufferId id, DomainId from, DomainId to,
                         bool discard_dirty) {
  try {
    std::size_t size = 0;
    bool have_from = false;
    bool from_alive = false;
    std::vector<std::pair<std::size_t, std::size_t>> dirty;
    {
      std::shared_lock buffers(buffers_mutex_);
      require(from.value < domains_.size() && to.value < domains_.size(),
              "unknown domain", Errc::not_found);
      require(from != to, "evacuate needs distinct source and target");
      require_domain_alive(to);
      Buffer& buf = buffers_.get(id);
      size = buf.size();
      have_from = from != kHostDomain && buf.instantiated_in(from);
      from_alive = domains_[from.value].alive();
      if (have_from) {
        dirty = buf.dirty_ranges(from);
      }
    }
    // Let executor threads finish any claimed-failed bodies that may
    // still touch incarnation storage before we move/drop it.
    executor_->quiesce();
    if (!dirty.empty()) {
      if (!from_alive && !discard_dirty) {
        // The device held the only current copy of these ranges and died
        // with them. Refusing (rather than silently refreshing the
        // target from the stale host copy) is the whole point: the
        // caller must either restore from its own checkpoint / re-execute
        // the producers (then pass discard_dirty) or accept the loss.
        std::size_t bytes = 0;
        for (const auto& [offset, length] : dirty) {
          bytes += length;
        }
        return Status::error(
            Errc::data_loss,
            "evacuate: " + std::to_string(bytes) + " dirty bytes of buffer " +
                std::to_string(id.value) + " had their only current copy on "
                "lost domain " + std::to_string(from.value));
      }
      if (from_alive) {
        // The source is alive and newer than the host over these ranges:
        // sync them home first, so the host copy we are about to treat
        // as authoritative actually is. Validity follows the copies
        // (as-if, in timing-only runs) so elision decisions stay
        // identical whether payloads execute or not.
        if (executor_->executes_payloads()) {
          for (const auto& [offset, length] : dirty) {
            std::byte* host = buffer_local(id, kHostDomain, offset, length);
            std::byte* src = buffer_local(id, from, offset, length);
            std::memcpy(host, src, length);
          }
        }
        std::shared_lock buffers(buffers_mutex_);
        Buffer& buf = buffers_.get(id);
        for (const auto& [offset, length] : dirty) {
          buf.note_transfer(from, kHostDomain, offset, length);
        }
      }
      std::shared_lock buffers(buffers_mutex_);
      buffers_.get(id).discard_dirty(from);
    }
    if (to != kHostDomain) {
      buffer_instantiate(id, to);  // no-op if already incarnated there
      if (executor_->executes_payloads()) {
        // The host incarnation is the authoritative copy on this
        // host-centric topology; refresh the target from it.
        std::byte* host = buffer_local(id, kHostDomain, 0, size);
        std::byte* sink = buffer_local(id, to, 0, size);
        std::memcpy(sink, host, size);
      }
      std::shared_lock buffers(buffers_mutex_);
      buffers_.get(id).note_transfer(kHostDomain, to, 0, size);
    }
    if (have_from) {
      buffer_deinstantiate(id, from);
    }
    return Status::ok();
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  }
}

// --- Buffers ---------------------------------------------------------------

BufferId Runtime::buffer_create(void* base, std::size_t size,
                                BufferProps props) {
  const std::unique_lock buffers(buffers_mutex_);
  return buffers_.create(base, size, props);
}

void Runtime::buffer_instantiate(BufferId id, DomainId domain) {
  require(domain.value < domains_.size(), "unknown domain", Errc::not_found);
  MemKind kind;
  std::size_t size = 0;
  {
    std::shared_lock buffers(buffers_mutex_);
    Buffer& buf = buffers_.get(id);
    if (domain == kHostDomain || buf.instantiated_in(domain)) {
      // Host incarnation aliases user memory; re-instantiation is a
      // recency touch for the governor's LRU.
      if (domain != kHostDomain) {
        const std::scoped_lock gov(gov_mu_);
        governor_.touch(domain, id);
      }
      return;
    }
    kind = buf.props().mem_kind;
    size = buf.size();
  }
  // Admission and instantiation must be one governor critical section:
  // otherwise a racing eviction could victimize the fresh (pins == 0)
  // ledger entry before the incarnation exists, leaking the charge.
  const std::scoped_lock gov(gov_mu_);
  govern_admit_locked(id, domain, kind, size, /*pins=*/0, nullptr);
  try {
    std::shared_lock buffers(buffers_mutex_);
    buffers_.get(id).instantiate(domain);
  } catch (...) {
    governor_.release(domain, id);
    throw;
  }
}

void Runtime::buffer_deinstantiate(BufferId id, DomainId domain,
                                   bool discard_dirty) {
  {
    const std::scoped_lock gov(gov_mu_);
    std::shared_lock buffers(buffers_mutex_);
    Buffer& buf = buffers_.get(id);
    if (!buf.instantiated_in(domain)) {
      if (domain != kHostDomain && buf.spilled_from(domain)) {
        // The governor already dropped the incarnation (dirty ranges went
        // home at eviction); deinstantiation just withdraws its demand
        // re-fetch eligibility.
        buf.clear_spilled(domain);
        return;
      }
      require(false, "buffer not instantiated there", Errc::not_found);
    }
    if (domain != kHostDomain && !discard_dirty) {
      const auto dirty = buf.dirty_ranges(domain);
      if (!dirty.empty()) {
        std::size_t bytes = 0;
        for (const auto& [offset, length] : dirty) {
          bytes += length;
        }
        // Mirror of evacuate's contract: dropping device-newer ranges must
        // be explicit. Callers sync_home first or pass discard_dirty.
        throw Error(
            Errc::data_loss,
            "buffer_deinstantiate: " + std::to_string(bytes) +
                " dirty bytes of buffer " + std::to_string(id.value) +
                " exist only on domain " + std::to_string(domain.value) +
                "; sync_home first or pass discard_dirty");
      }
    }
    buf.deinstantiate(domain);
    governor_.release(domain, id);
  }
  // The refund may be the capacity a backpressured dispatch is waiting on.
  retry_deferred();
}

std::pair<void*, std::size_t> Runtime::buffer_extent(const void* proxy) {
  std::shared_lock buffers(buffers_mutex_);
  Buffer& buf = buffers_.find_containing(proxy, 1);
  return {buf.proxy_base(), buf.size()};
}

void Runtime::buffer_destroy_containing(const void* proxy) {
  BufferId id;
  {
    std::shared_lock buffers(buffers_mutex_);
    id = buffers_.find_containing(proxy, 1).id();
  }
  buffer_destroy(id);
}

std::size_t Runtime::memory_available(DomainId domain, MemKind kind) const {
  require(domain.value < domains_.size(), "unknown domain", Errc::not_found);
  const auto& budgets = domains_[domain.value].desc().memory_bytes;
  const auto it = budgets.find(kind);
  if (it == budgets.end()) {
    return 0;
  }
  const std::scoped_lock gov(gov_mu_);
  return it->second - governor_.used(domain, kind);
}

void Runtime::buffer_destroy(BufferId id) {
  {
    // gov_mu_ before the exclusive buffers lock (the governor's eviction
    // path holds gov_mu_ while taking buffers_mutex_ shared).
    const std::scoped_lock gov(gov_mu_);
    const std::unique_lock buffers(buffers_mutex_);
    Buffer& buf = buffers_.get(id);
    // Refund every device incarnation's budget.
    for (std::size_t d = 1; d < domains_.size(); ++d) {
      const DomainId domain{static_cast<std::uint32_t>(d)};
      if (buf.instantiated_in(domain)) {
        governor_.release(domain, id);
      }
    }
    buffers_.destroy(id);
  }
  // The refund may be the capacity a backpressured dispatch is waiting on.
  retry_deferred();
}

// --- Out-of-core memory governor -------------------------------------------

namespace {

/// Thrown (and caught) only inside this translation unit: dispatch-time
/// admission found the budget full with every victim pinned by *other*
/// in-flight actions. Not an error — Runtime::dispatch parks the action
/// in ooc_deferred_ and retry_deferred() re-dispatches it when those
/// pins release.
struct DeferDispatch {
  BufferId buffer;
  DomainId domain;
  MemKind kind = MemKind::ddr;
  std::size_t bytes = 0;
};

}  // namespace

void Runtime::govern_admit_locked(
    BufferId id, DomainId domain, MemKind kind, std::size_t bytes,
    std::uint32_t pins, double* stall_s,
    const std::vector<std::pair<BufferId, DomainId>>* defer_pins) {
  if (governor_.resident(domain, id)) {
    for (std::uint32_t i = 0; i < pins; ++i) {
      governor_.pin(domain, id);
    }
    if (pins == 0) {
      governor_.touch(domain, id);
    }
    return;
  }
  const auto& budgets = domains_[domain.value].desc().memory_bytes;
  const auto budget_it = budgets.find(kind);
  require(budget_it != budgets.end(),
          "domain has no memory of the requested kind",
          Errc::resource_exhausted);
  // A buffer that exceeds the entire budget can never be made to fit, no
  // matter how much is evicted.
  require(bytes <= budget_it->second,
          "buffer larger than the domain's entire memory budget",
          Errc::resource_exhausted);
  while (governor_.used(domain, kind) + bytes > budget_it->second) {
    require(evict_enabled_, "domain memory budget exhausted",
            Errc::resource_exhausted);
    if (defer_pins != nullptr &&
        !governor_.pick_victim(domain, kind).has_value() &&
        governor_.has_external_pins(domain, kind, *defer_pins)) {
      // Backpressure instead of failure: another action's completion
      // will unpin a victim, so parking this dispatch makes progress.
      // (If the only pins in the way are our own, fall through to
      // evict_one_locked's throw — waiting could never help.)
      throw DeferDispatch{id, domain, kind, bytes};
    }
    const double stall = evict_one_locked(domain, kind);
    if (stall_s != nullptr) {
      *stall_s += stall;
    }
  }
  governor_.admit(domain, id, kind, bytes, pins);
}

double Runtime::evict_one_locked(DomainId domain, MemKind kind) {
  const std::optional<BufferId> victim = governor_.pick_victim(domain, kind);
  require(victim.has_value(),
          "domain memory budget exhausted and every resident buffer is "
          "pinned by in-flight actions",
          Errc::resource_exhausted);
  const std::size_t victim_bytes = governor_.bytes_of(domain, *victim);
  std::size_t written = 0;
  std::size_t dropped = 0;
  double stall_s = 0.0;
  {
    std::shared_lock buffers(buffers_mutex_);
    Buffer* buf = nullptr;
    try {
      buf = &buffers_.get(*victim);
    } catch (const Error&) {
      buf = nullptr;  // destroyed with a stale ledger entry; just refund
    }
    if (buf != nullptr) {
      // Validity-map-minimized spill: only device-newer (dirty) ranges
      // cost a writeback; everything else the host already has, so the
      // incarnation drops free. No executor quiesce here — the victim is
      // unpinned, so no in-flight body targets it, and a claimed-failed
      // straggler writes into owned storage that lingers until buffer
      // destruction (and whose validity is already garbage).
      const auto dirty = buf->dirty_ranges(domain);
      for (const auto& [offset, length] : dirty) {
        if (executor_->executes_payloads()) {
          std::byte* host = buf->local_address(kHostDomain, offset);
          std::byte* src = buf->local_address(domain, offset);
          std::memcpy(host, src, length);
        }
        written += length;
        stall_s += link_for(domain).transfer_seconds(length);
      }
      for (const auto& [offset, length] : dirty) {
        buf->note_transfer(domain, kHostDomain, offset, length);
      }
      for (const auto& [offset, length] : buf->valid_ranges(domain)) {
        dropped += length;
      }
      dropped -= written > dropped ? dropped : written;
      buf->spill(domain);
    }
  }
  governor_.release(domain, *victim);
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  stats_.spill_bytes_written.fetch_add(written, std::memory_order_relaxed);
  stats_.spill_bytes_dropped_clean.fetch_add(dropped,
                                             std::memory_order_relaxed);
  log_debug("evicted buffer %u from domain %u (%zu dirty bytes home, %zu "
            "clean bytes dropped)",
            victim->value, domain.value, written, dropped);
  if (trace_ != nullptr) {
    trace_->on_ooc("evict", *victim, domain, written, executor_->now());
  }
  if (AdmissionHook* hook = admission_hook_.load(std::memory_order_acquire)) {
    hook->on_evict(*victim, domain, victim_bytes);
  }
  return stall_s;
}

void Runtime::govern_release_locked(BufferId id, DomainId domain) {
  governor_.release(domain, id);
}

bool Runtime::release_pins(const std::shared_ptr<ActionRecord>& record) {
  if (record->pins.empty()) {
    return false;
  }
  const std::scoped_lock gov(gov_mu_);
  for (const auto& [buffer, domain] : record->pins) {
    governor_.unpin(domain, buffer);
  }
  record->pins.clear();
  return true;
}

void Runtime::retry_deferred() {
  std::vector<std::shared_ptr<ActionRecord>> parked;
  {
    const std::scoped_lock gov(gov_mu_);
    if (ooc_deferred_.empty()) {
      return;
    }
    parked.swap(ooc_deferred_);
  }
  for (const auto& record : parked) {
    // An action cancelled (or failed by domain loss) while parked has
    // already been completed by its claimant; re-dispatching it would
    // run a body whose completion nobody owns.
    bool stale;
    {
      const std::scoped_lock lock(stream_state(record->stream).mu);
      stale = record->claimed || record->state == ActionRecord::State::done;
    }
    if (stale) {
      continue;
    }
    // Each retry either admits (dispatches), re-parks (still blocked on
    // another action's pins), or fails the action (can never fit).
    dispatch(record);
  }
}

void Runtime::prepare_residency(const std::shared_ptr<ActionRecord>& record) {
  // Residency targets: every incarnation this action's effects touch.
  struct Target {
    BufferId buffer;
    DomainId domain;
    std::size_t offset = 0;
    std::size_t length = 0;
    bool reads = false;  ///< restore host-valid ranges before executing
  };
  std::vector<Target> targets;
  const DomainId sink = stream_state(record->stream).domain;
  switch (record->type) {
    case ActionType::compute:
      if (sink == kHostDomain) {
        return;  // host operands alias user memory, never governed
      }
      for (const Operand& op : record->operands) {
        const bool reads =
            op.access == Access::in || op.access == Access::inout;
        targets.push_back({op.buffer, sink, op.offset, op.length, reads});
      }
      break;
    case ActionType::transfer: {
      if (sink == kHostDomain) {
        return;  // aliased away at enqueue
      }
      const TransferPayload& t = record->transfer;
      // d2h reads the sink incarnation; h2d and d2d write it. A d2d
      // additionally reads the peer incarnation over the same range.
      const bool sink_reads =
          t.peer == kHostDomain && t.dir == XferDir::sink_to_src;
      targets.push_back({t.buffer, sink, t.offset, t.length, sink_reads});
      if (t.peer != kHostDomain) {
        targets.push_back({t.buffer, t.peer, t.offset, t.length, true});
      }
      break;
    }
    case ActionType::alloc:
      // The incarnation must exist (re-admitting it if evicted since
      // enqueue); nothing is read.
      targets.push_back({record->transfer.buffer, sink, 0, 0, false});
      break;
    case ActionType::event_wait:
    case ActionType::event_signal:
      return;  // no incarnation storage touched
  }
  for (const Target& t : targets) {
    if (t.domain == kHostDomain) {
      continue;
    }
    MemKind kind;
    std::size_t size = 0;
    {
      std::shared_lock buffers(buffers_mutex_);
      Buffer* buf = nullptr;
      try {
        buf = &buffers_.get(t.buffer);
      } catch (const Error&) {
        continue;  // destroyed while queued; the executor's path copes
      }
      kind = buf->props().mem_kind;
      size = buf->size();
    }
    bool admitted = false;
    {
      const std::scoped_lock gov(gov_mu_);
      if (governor_.resident(t.domain, t.buffer)) {
        governor_.pin(t.domain, t.buffer);
      } else {
        // Spilled (or dropped) since enqueue: re-admit with an initial
        // pin so a concurrent dispatch's eviction cannot victimize it
        // before this action completes. Passing our own pin list arms
        // the backpressure path: if the budget is full of operands
        // pinned by *other* in-flight actions, this throws
        // DeferDispatch and the whole dispatch parks instead of
        // failing.
        govern_admit_locked(t.buffer, t.domain, kind, size, /*pins=*/1,
                            &record->ooc_stall_s, &record->pins);
        std::shared_lock buffers(buffers_mutex_);
        buffers_.get(t.buffer).instantiate(t.domain);
        admitted = true;
      }
    }
    record->pins.emplace_back(t.buffer, t.domain);
    if (admitted) {
      if (AdmissionHook* hook =
              admission_hook_.load(std::memory_order_acquire)) {
        try {
          hook->on_refetch(t.buffer, t.domain, size);
        } catch (...) {
          // Vetoed (e.g. residency quota): unwind the fresh admission so
          // the runtime and the hook agree the incarnation is still out.
          const std::scoped_lock gov(gov_mu_);
          {
            std::shared_lock buffers(buffers_mutex_);
            try {
              Buffer& buf = buffers_.get(t.buffer);
              buf.spill(t.domain);
            } catch (const Error&) {
            }
          }
          governor_.release(t.domain, t.buffer);
          record->pins.pop_back();
          throw;
        }
      }
      stats_.refetches.fetch_add(1, std::memory_order_relaxed);
    }
    // Demand re-fetch: restore the ranges this action reads that the
    // host has and the incarnation does not. Ranges the action only
    // writes stay invalid — and a d2h over a restored range now
    // legitimately elides (both endpoints valid), so the "download"
    // degenerates to the upload we just performed instead of copying
    // garbage over good host data.
    //
    // This runs even when the incarnation was already resident, if it
    // was ever rebuilt after a spill: a write-only action (e.g. a beta=0
    // gemm) re-admits a spilled buffer restoring nothing, leaving a
    // resident incarnation that is invalid over everything it didn't
    // write — the next reader must pull its ranges back from the host
    // copy the eviction synced them to. Never-spilled incarnations skip
    // this (reading a range the app never uploaded keeps pre-governor
    // semantics and costs no virtual stall time).
    bool paged = admitted;
    if (!paged && t.reads && t.length > 0) {
      std::shared_lock buffers(buffers_mutex_);
      paged = buffers_.get(t.buffer).demand_paged(t.domain);
    }
    std::size_t restored = 0;
    if (paged && t.reads && t.length > 0) {
      std::vector<std::pair<std::size_t, std::size_t>> need;
      {
        std::shared_lock buffers(buffers_mutex_);
        need = buffers_.get(t.buffer)
                   .refetch_ranges(t.domain, t.offset, t.length);
      }
      for (const auto& [offset, length] : need) {
        if (executor_->executes_payloads()) {
          std::byte* dst = buffer_local(t.buffer, t.domain, offset, length);
          std::byte* src =
              buffer_local(t.buffer, kHostDomain, offset, length);
          std::memcpy(dst, src, length);
        }
        {
          std::shared_lock buffers(buffers_mutex_);
          buffers_.get(t.buffer)
              .note_transfer(kHostDomain, t.domain, offset, length);
        }
        record->ooc_stall_s += link_for(t.domain).transfer_seconds(length);
        restored += length;
      }
    }
    if (admitted || restored > 0) {
      log_debug("refetched buffer %u into domain %u (%zu bytes restored)",
                t.buffer.value, t.domain.value, restored);
      if (trace_ != nullptr) {
        trace_->on_ooc("refetch", t.buffer, t.domain, restored,
                       executor_->now());
      }
    }
  }
}

std::size_t Runtime::buffer_count() const {
  std::shared_lock buffers(buffers_mutex_);
  return buffers_.count();
}

void* Runtime::translate(const void* proxy, std::size_t len, DomainId domain) {
  std::shared_lock buffers(buffers_mutex_);
  Buffer& buf = buffers_.find_containing(proxy, len);
  return buf.local_address(domain, buf.offset_of(proxy));
}

std::byte* Runtime::buffer_local(BufferId id, DomainId domain,
                                 std::size_t offset, std::size_t len) {
  std::shared_lock buffers(buffers_mutex_);
  Buffer& buf = buffers_.get(id);
  require(offset + len <= buf.size(), "range escapes buffer",
          Errc::out_of_range);
  return buf.local_address(domain, offset);
}

const LinkModel& Runtime::link_for(DomainId domain) const {
  if (domain == kHostDomain) {
    return topology_.loopback();
  }
  return topology_.link_to_device(domain.value - 1);
}

double Runtime::account_transfer_staging(std::size_t bytes) {
  const std::scoped_lock lock(pool_mutex_);
  const std::size_t block = pool_.block_size();
  const std::size_t blocks = (bytes + block - 1) / block;
  const double before = pool_.stats().modeled_alloc_seconds;
  // Transfers use staging blocks transiently: acquire for the duration of
  // the copy, release after. Steady state with the pool enabled is all
  // hits; with the pool disabled every staging block pays the modeled
  // allocation cost (the §III OmpSs-without-pool configuration).
  std::vector<PoolBlock> held;
  held.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    held.push_back(pool_.acquire(block));
  }
  for (auto& b : held) {
    pool_.release(std::move(b));
  }
  return pool_.stats().modeled_alloc_seconds - before;
}

// --- Streams ---------------------------------------------------------------

StreamId Runtime::stream_create(DomainId domain, const CpuMask& mask,
                                std::optional<OrderPolicy> policy) {
  require(domain.value < domains_.size(), "unknown domain", Errc::not_found);
  require_domain_alive(domain);
  require(!mask.empty(), "stream mask must be non-empty");
  const auto cpus = mask.cpus();
  require(cpus.back() < domains_[domain.value].hw_threads(),
          "stream mask exceeds domain hardware threads");
  const std::unique_lock streams(streams_mutex_);
  const StreamId id{static_cast<std::uint32_t>(streams_.size())};
  auto state = std::make_unique<StreamState>();
  state->id = id;
  state->domain = domain;
  state->mask = mask;
  state->policy = policy.value_or(config_.policy);
  streams_.push_back(std::move(state));
  log_debug("stream %u created on domain %u mask %s", id.value, domain.value,
            mask.to_string().c_str());
  return id;
}

void Runtime::stream_destroy(StreamId id) {
  StreamState& s = stream_state(id);
  const std::scoped_lock lock(s.mu);
  require(s.window.empty(), "stream_destroy on a busy stream");
  s.alive.store(false, std::memory_order_release);
}

std::size_t Runtime::stream_cancel(StreamId id) {
  std::vector<std::shared_ptr<ActionRecord>> victims;
  {
    StreamState& s = stream_state(id);
    lock_counted(s.mu);
    const std::lock_guard<std::mutex> lock(s.mu, std::adopt_lock);
    for (const auto& rec : s.window) {
      if (rec->state == ActionRecord::State::done || rec->claimed) {
        continue;
      }
      const bool undispatched = rec->state == ActionRecord::State::pending;
      // A dispatched event wait holds no thread and has no effects; it is
      // safe to cancel — this is what unwedges a stream parked on an
      // event that will never fire. Dispatched computes/transfers have
      // effects in flight and are left to finish.
      const bool parked_wait =
          rec->state == ActionRecord::State::dispatched &&
          rec->type == ActionType::event_wait;
      if (!undispatched && !parked_wait) {
        continue;
      }
      rec->claimed = true;
      rec->cancelled = true;
      if (undispatched) {
        rec->state = ActionRecord::State::dispatched;
      }
      stats_.actions_cancelled.fetch_add(1, std::memory_order_relaxed);
      victims.push_back(rec);
    }
  }
  const std::size_t count = victims.size();
  for (auto& victim : victims) {
    finish_action(std::move(victim));
  }
  return count;
}

std::size_t Runtime::stream_count() const {
  std::shared_lock streams(streams_mutex_);
  return static_cast<std::size_t>(
      std::count_if(streams_.begin(), streams_.end(), [](const auto& s) {
        return s->alive.load(std::memory_order_acquire);
      }));
}

DomainId Runtime::stream_domain(StreamId id) const {
  return stream_state(id).domain;
}

OrderPolicy Runtime::stream_policy(StreamId id) const {
  return stream_state(id).policy;
}

std::size_t Runtime::buffer_size(BufferId id) const {
  std::shared_lock buffers(buffers_mutex_);
  return buffers_.get(id).size();
}

CpuMask Runtime::stream_mask(StreamId id) const {
  return stream_state(id).mask;
}

Runtime::StreamState& Runtime::stream_state_unlocked(StreamId id) {
  require(id.value < streams_.size() &&
              streams_[id.value]->alive.load(std::memory_order_acquire),
          "unknown stream", Errc::not_found);
  return *streams_[id.value];
}

const Runtime::StreamState& Runtime::stream_state_unlocked(
    StreamId id) const {
  require(id.value < streams_.size() &&
              streams_[id.value]->alive.load(std::memory_order_acquire),
          "unknown stream", Errc::not_found);
  return *streams_[id.value];
}

Runtime::StreamState& Runtime::stream_state(StreamId id) {
  std::shared_lock streams(streams_mutex_);
  return stream_state_unlocked(id);
}

const Runtime::StreamState& Runtime::stream_state(StreamId id) const {
  std::shared_lock streams(streams_mutex_);
  return stream_state_unlocked(id);
}

// --- Enqueue ---------------------------------------------------------------
//
// Enqueue front-ends no longer take a runtime-wide lock: stream lookup is
// a shared read, domain liveness is an atomic, operand resolution takes
// the buffer table's shared lock, and admission serializes only on the
// target stream's own mutex. Enqueues on different streams run fully in
// parallel.

std::shared_ptr<EventState> Runtime::enqueue_compute(
    StreamId stream, ComputePayload payload,
    std::span<const OperandRef> operands) {
  require(payload.body != nullptr, "compute task needs a body");
  auto record = std::make_shared<ActionRecord>();
  record->type = ActionType::compute;
  record->compute = std::move(payload);

  StreamState& s = stream_state(stream);
  require_domain_alive(s.domain);
  // Under capture the instantiation check is deferred to replay: a
  // captured alloc node earlier in the graph legalizes this use, and
  // GraphExec instantiates before admitting the launch.
  CaptureSink* sink = capture_.load(std::memory_order_acquire);
  const bool capturing = sink != nullptr && sink->captures(stream);
  record->stream = stream;
  {
    std::shared_lock buffers(buffers_mutex_);
    for (const OperandRef& ref : operands) {
      Operand op = buffers_.resolve(ref.ptr, ref.len, ref.access);
      const Buffer& buf = buffers_.get(op.buffer);
      // A governor-spilled incarnation still passes: dispatch re-admits
      // and re-uploads it on demand (prepare_residency). usable_in reads
      // both states under one lock so a concurrent eviction can't be
      // observed mid-transition.
      require(capturing || buf.usable_in(s.domain),
              "compute operand buffer not instantiated in sink domain",
              Errc::buffer_not_instantiated);
      // Enforce the creator's declared usage property (§II: buffers let
      // users "declare usage properties, such as whether it's read only").
      require(!buf.props().read_only || !writes(op.access),
              "write operand on a read-only buffer");
      record->operands.push_back(op);
    }
  }
  if (capturing) {
    return sink->record(std::move(record));
  }
  tag_and_gate(s, *record, 0);
  stats_.computes_enqueued.fetch_add(1, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(s)) {
    tc->computes_enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  return admit(s, std::move(record));
}

std::shared_ptr<EventState> Runtime::enqueue_transfer(StreamId stream,
                                                      const void* proxy,
                                                      std::size_t len,
                                                      XferDir dir) {
  auto record = std::make_shared<ActionRecord>();
  record->type = ActionType::transfer;

  StreamState& s = stream_state(stream);
  require_domain_alive(s.domain);
  record->stream = stream;
  const bool aliased = (s.domain == kHostDomain);
  // As in enqueue_compute, capture defers the instantiation check to
  // replay (a captured alloc node may precede this transfer).
  CaptureSink* sink = capture_.load(std::memory_order_acquire);
  const bool capturing = sink != nullptr && sink->captures(stream);
  {
    std::shared_lock buffers(buffers_mutex_);
    Buffer& buf = buffers_.find_containing(proxy, len);
    if (!aliased) {
      require(capturing || buf.usable_in(s.domain),
              "transfer target buffer not instantiated in sink domain",
              Errc::buffer_not_instantiated);
    }
    record->transfer =
        TransferPayload{buf.id(), buf.offset_of(proxy), len, dir};
    // Direction-sensitive dependence encoding: a host->sink transfer writes
    // the sink incarnation (out); a sink->host transfer only reads it (in),
    // so it can overlap later sink-side readers of the same range — the
    // enabling property of the RTM halo pipeline (§V).
    record->operands.push_back(
        Operand{buf.id(), record->transfer.offset, len,
                dir == XferDir::src_to_sink ? Access::out : Access::in});
  }
  if (capturing) {
    return sink->record(std::move(record));
  }
  tag_and_gate(s, *record, len);
  stats_.transfers_enqueued.fetch_add(1, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(s)) {
    tc->transfers_enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  if (aliased) {
    stats_.transfers_aliased_away.fetch_add(1, std::memory_order_relaxed);
  }
  return admit(s, std::move(record));
}

std::shared_ptr<EventState> Runtime::enqueue_transfer_from(StreamId stream,
                                                           const void* proxy,
                                                           std::size_t len,
                                                           DomainId peer) {
  if (peer == kHostDomain) {
    return enqueue_transfer(stream, proxy, len, XferDir::src_to_sink);
  }
  require(peer.value < domains_.size(), "unknown peer domain",
          Errc::not_found);
  auto record = std::make_shared<ActionRecord>();
  record->type = ActionType::transfer;

  StreamState& s = stream_state(stream);
  require_domain_alive(s.domain);
  require(s.domain != kHostDomain,
          "device->device transfer needs a device sink stream "
          "(use enqueue_transfer for device->host)");
  require(peer != s.domain, "peer equals the sink domain");
  record->stream = stream;
  CaptureSink* sink = capture_.load(std::memory_order_acquire);
  const bool capturing = sink != nullptr && sink->captures(stream);
  {
    std::shared_lock buffers(buffers_mutex_);
    Buffer& buf = buffers_.find_containing(proxy, len);
    require(capturing || buf.usable_in(s.domain),
            "transfer target buffer not instantiated in sink domain",
            Errc::buffer_not_instantiated);
    require(capturing || buf.usable_in(peer),
            "transfer source buffer not instantiated in peer domain",
            Errc::buffer_not_instantiated);
    record->transfer = TransferPayload{buf.id(), buf.offset_of(proxy), len,
                                       XferDir::src_to_sink, peer};
    // Writes the sink incarnation (and, through staging, the host).
    record->operands.push_back(
        Operand{buf.id(), record->transfer.offset, len, Access::out});
  }
  if (capturing) {
    return sink->record(std::move(record));
  }
  tag_and_gate(s, *record, len);
  stats_.transfers_enqueued.fetch_add(1, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(s)) {
    tc->transfers_enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  return admit(s, std::move(record));
}

std::shared_ptr<EventState> Runtime::enqueue_alloc(StreamId stream,
                                                   BufferId buffer) {
  auto record = std::make_shared<ActionRecord>();
  record->type = ActionType::alloc;

  StreamState& s = stream_state(stream);
  require_domain_alive(s.domain);
  require(s.domain != kHostDomain,
          "alloc targets a device (the host aliases user memory)");
  record->stream = stream;
  CaptureSink* sink = capture_.load(std::memory_order_acquire);
  const bool capturing = sink != nullptr && sink->captures(stream);
  {
    std::shared_lock buffers(buffers_mutex_);
    Buffer& buf = buffers_.get(buffer);
    require(!buf.instantiated_in(s.domain),
            "buffer already instantiated in sink domain",
            Errc::already_initialized);
    record->transfer =
        TransferPayload{buffer, 0, buf.size(), XferDir::src_to_sink};
    record->operands.push_back(Operand{buffer, 0, buf.size(), Access::out});
  }
  if (capturing) {
    // Budget charge and incarnation bookkeeping are deferred to replay
    // (GraphExec instantiates before admitting the launch).
    return sink->record(std::move(record));
  }
  tag_and_gate(s, *record, 0);
  stats_.syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(s)) {
    tc->syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  // Charge budget and declare the incarnation now (enqueue time); the
  // executor pays the modeled allocation latency in stream order.
  buffer_instantiate(buffer, s.domain);
  return admit(s, std::move(record));
}

std::shared_ptr<EventState> Runtime::enqueue_event_wait(
    StreamId stream, std::shared_ptr<EventState> event,
    std::span<const OperandRef> operands) {
  require(event != nullptr, "event_wait needs an event");
  auto record = std::make_shared<ActionRecord>();
  record->type = ActionType::event_wait;
  record->wait_event = std::move(event);

  StreamState& s = stream_state(stream);
  require_domain_alive(s.domain);
  record->stream = stream;
  {
    std::shared_lock buffers(buffers_mutex_);
    for (const OperandRef& ref : operands) {
      record->operands.push_back(
          buffers_.resolve(ref.ptr, ref.len, ref.access));
    }
  }
  record->full_barrier = record->operands.empty();
  CaptureSink* sink = capture_.load(std::memory_order_acquire);
  if (sink != nullptr && sink->captures(stream)) {
    return sink->record(std::move(record));
  }
  tag_and_gate(s, *record, 0);
  stats_.syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(s)) {
    tc->syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  return admit(s, std::move(record));
}

std::shared_ptr<EventState> Runtime::enqueue_signal(
    StreamId stream, std::span<const OperandRef> operands) {
  auto record = std::make_shared<ActionRecord>();
  record->type = ActionType::event_signal;

  StreamState& s = stream_state(stream);
  require_domain_alive(s.domain);
  record->stream = stream;
  {
    std::shared_lock buffers(buffers_mutex_);
    for (const OperandRef& ref : operands) {
      record->operands.push_back(
          buffers_.resolve(ref.ptr, ref.len, ref.access));
    }
  }
  record->full_barrier = record->operands.empty();
  CaptureSink* sink = capture_.load(std::memory_order_acquire);
  if (sink != nullptr && sink->captures(stream)) {
    return sink->record(std::move(record));
  }
  tag_and_gate(s, *record, 0);
  stats_.syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(s)) {
    tc->syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  return admit(s, std::move(record));
}

// --- Scheduling ------------------------------------------------------------

std::vector<ActionId> Runtime::legacy_blockers(const StreamState& stream,
                                               const ActionRecord& record,
                                               std::size_t limit) const {
  // The pre-index pairwise scan, kept verbatim: the oracle reference and
  // the HS_DEP_LEGACY baseline. Window order == seq order == id order
  // within a stream, so the result is sorted by id.
  std::vector<ActionId> out;
  std::size_t steps = 0;
  const std::size_t n = std::min(limit, stream.window.size());
  for (std::size_t j = 0; j < n; ++j) {
    const auto& earlier = stream.window[j];
    ++steps;
    if (earlier->state == ActionRecord::State::done) {
      continue;
    }
    if (record.conflicts_with(*earlier)) {
      out.push_back(earlier->id);
    }
  }
  stats_.dep_scan_steps.fetch_add(steps, std::memory_order_relaxed);
  return out;
}

std::vector<ActionId> Runtime::indexed_blockers(
    const StreamState& stream, const ActionRecord& record,
    std::uint64_t seq_limit, std::size_t window_limit) const {
  std::vector<ActionId> out;
  if (record.full_barrier) {
    // A barrier conflicts with everything: the window residue itself is
    // the blocker set; the index cannot beat a linear walk here.
    std::size_t steps = 0;
    const std::size_t n = std::min(window_limit, stream.window.size());
    for (std::size_t j = 0; j < n; ++j) {
      const auto& earlier = stream.window[j];
      ++steps;
      if (earlier->state != ActionRecord::State::done) {
        out.push_back(earlier->id);
      }
    }
    stats_.dep_scan_steps.fetch_add(steps, std::memory_order_relaxed);
  } else {
    std::vector<DepUse>& uses = stream.scratch_uses;  // guarded by stream.mu
    uses.clear();
    std::size_t steps = 0;
    for (const Operand& op : record.operands) {
      steps += stream.index.collect(op, uses);
    }
    // Live stream-wide barriers conflict with every later action but
    // carry no operands, so they ride alongside the byte-range index.
    for (const BarrierRef& barrier : stream.barriers) {
      ++steps;
      if (barrier.seq < seq_limit) {
        out.push_back(barrier.action);
      }
    }
    for (const DepUse& use : uses) {
      if (use.seq < seq_limit) {
        out.push_back(use.action);
      }
    }
    stats_.dep_scan_steps.fetch_add(steps, std::memory_order_relaxed);
    // One edge per conflicting predecessor no matter how many operand
    // pairs overlap — exactly the legacy scan's semantics. Id order ==
    // admission order within a stream.
    if (out.size() > 1) {
      std::sort(out.begin(), out.end(),
                [](ActionId a, ActionId b) { return a.value < b.value; });
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
    stats_.dep_index_hits.fetch_add(out.size(), std::memory_order_relaxed);
  }
  if (dep_oracle_) {
    stats_.dep_oracle_checks.fetch_add(1, std::memory_order_relaxed);
    const std::vector<ActionId> reference =
        legacy_blockers(stream, record, window_limit);
    if (reference != out) {
      log_error("dep oracle mismatch on stream %u: index found %zu "
                "blockers, legacy scan found %zu",
                stream.id.value, out.size(), reference.size());
      throw Error(Errc::internal,
                  "dependence-index oracle mismatch (HS_DEP_ORACLE)");
    }
  }
  return out;
}

std::shared_ptr<EventState> Runtime::admit(
    StreamState& stream, std::shared_ptr<ActionRecord> record) {
  auto completion = record->completion;
  bool ready = false;
  {
    lock_counted(stream.mu);
    const std::lock_guard<std::mutex> lock(stream.mu, std::adopt_lock);
    // The global atomic keeps ids in enqueue order across streams while
    // the per-stream lock keeps them monotone within each window.
    record->id =
        ActionId{next_action_id_.fetch_add(1, std::memory_order_relaxed)};
    record->seq = stream.next_seq++;
    if (record->type == ActionType::transfer && stream.domain != kHostDomain) {
      // Enqueue-order identity for fault decisions: assigned under the
      // stream lock, so it is the same on every backend and every run no
      // matter which copier thread later runs the attempt.
      record->transfer_seq =
          next_transfer_seq_[stream.domain.value].fetch_add(
              1, std::memory_order_relaxed);
    }

    DepState dep;
    dep.record = record;
    dep.stream = &stream;

    if (stream.policy == OrderPolicy::strict_fifo) {
      // Strict FIFO forms a chain: block on the most recent incomplete
      // action only (completion order is FIFO under this policy).
      std::size_t steps = 0;
      for (auto it = stream.window.rbegin(); it != stream.window.rend();
           ++it) {
        ++steps;
        if ((*it)->state != ActionRecord::State::done) {
          DepState* prev = dep_find((*it)->id);
          require(prev != nullptr, "missing strict-chain predecessor",
                  Errc::internal);
          prev->successors.push_back(record->id);
          dep.blockers = 1;
          break;
        }
      }
      stats_.dep_scan_steps.fetch_add(steps, std::memory_order_relaxed);
    } else {
      const std::vector<ActionId> blockers =
          dep_legacy_
              ? legacy_blockers(stream, *record, stream.window.size())
              : indexed_blockers(stream, *record, kNoSeqLimit,
                                 stream.window.size());
      for (const ActionId pred : blockers) {
        DepState* pd = dep_find(pred);
        require(pd != nullptr, "missing predecessor dep entry",
                Errc::internal);
        pd->successors.push_back(record->id);
      }
      dep.blockers = blockers.size();
    }

    stream.window.push_back(record);
    if (!dep_legacy_ && stream.policy != OrderPolicy::strict_fifo) {
      for (const Operand& op : record->operands) {
        stream.index.insert(op, record->id, record->seq);
      }
      if (record->full_barrier) {
        stream.barriers.push_back(BarrierRef{record->id, record->seq});
      }
    }
    if (dep.blockers == 0) {
      record->state = ActionRecord::State::dispatched;
      if (record != stream.window.front()) {
        stats_.ooo_dispatches.fetch_add(1, std::memory_order_relaxed);
      }
      ready = true;
    }
    {
      DepShard& shard = shard_for(record->id);
      lock_counted(shard.mu);
      const std::lock_guard<std::mutex> sl(shard.mu, std::adopt_lock);
      shard.map.emplace(record->id, std::move(dep));
    }
    if (trace_ != nullptr) {
      TraceRecorder::Record tr;
      tr.action = record->id;
      tr.stream = record->stream;
      tr.domain = stream.domain;
      tr.type = record->type;
      tr.graph = record->graph;
      tr.tenant = record->tenant;
      tr.session = record->session;
      if (record->type == ActionType::compute) {
        tr.label = record->compute.kernel;
        tr.flops = record->compute.flops;
      } else if (record->type == ActionType::transfer) {
        tr.label = record->transfer.peer != kHostDomain ? "xfer d2d"
                   : record->transfer.dir == XferDir::src_to_sink
                       ? "xfer h2d"
                       : "xfer d2h";
        tr.bytes = record->transfer.length;
      }
      tr.enqueue_s = executor_->now();
      trace_->on_enqueue(tr);
    }
  }
  // Fair-turn permit release: the admission is done (the record sits in
  // its window), so the gate can hand the turn to the next tenant before
  // this action dispatches or executes.
  if (record->gated) {
    if (AdmissionHook* hook =
            admission_hook_.load(std::memory_order_acquire)) {
      hook->after_admit(record->tenant, record->type);
    }
  }
  if (ready) {
    dispatch(record);
  }
  return completion;
}

// --- Task-graph capture & replay -------------------------------------------

void Runtime::set_capture(CaptureSink* sink) {
  const std::scoped_lock lock(mutex_);
  require(sink == nullptr || capture_.load(std::memory_order_relaxed) == nullptr,
          "a graph capture is already active", Errc::already_initialized);
  capture_.store(sink, std::memory_order_release);
}

std::uint32_t Runtime::note_graph_captured() {
  stats_.graphs_captured.fetch_add(1, std::memory_order_relaxed);
  return next_graph_id_.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::note_transfers_coalesced(std::uint64_t count) {
  stats_.transfers_coalesced.fetch_add(count, std::memory_order_relaxed);
}

void Runtime::admit_prelinked(std::span<const PrelinkedAction> batch,
                              std::uint32_t graph_id) {
  std::vector<std::shared_ptr<ActionRecord>> ready;
  // Service gating runs before any stream lock is taken: a tenant blocked
  // on its fair turn or a byte quota must hold nothing another tenant's
  // admission or a completion needs. One before_admit per record keeps
  // replayed work gate-equivalent to the eager enqueue path.
  for (const PrelinkedAction& entry : batch) {
    StreamState& s = stream_state(entry.record->stream);
    tag_and_gate(s, *entry.record,
                 entry.record->type == ActionType::transfer
                     ? entry.record->transfer.length
                     : 0);
    // The gate permit is released per record, not held across the batch:
    // one thread admitting an N-record batch while permits < N would
    // self-deadlock waiting on its own earlier acquires. Fair pacing and
    // quota charging already happened inside tag_and_gate; `gated` stays
    // set so completion still releases the byte budget.
    if (entry.record->gated) {
      if (AdmissionHook* hook =
              admission_hook_.load(std::memory_order_acquire)) {
        hook->after_admit(entry.record->tenant, entry.record->type);
      }
    }
  }
  // Collect the batch's streams and lock them all in ascending-id order
  // (deadlock-free against concurrent batches). Holding every involved
  // stream lock for the whole batch preserves the prelinked invariant:
  // an in-batch pred cannot complete while later entries are wired to it.
  std::vector<StreamState*> order;
  {
    std::shared_lock streams(streams_mutex_);
    for (const PrelinkedAction& entry : batch) {
      StreamState& s = stream_state_unlocked(entry.record->stream);
      if (std::find(order.begin(), order.end(), &s) == order.end()) {
        order.push_back(&s);
      }
    }
  }
  std::sort(order.begin(), order.end(),
            [](const StreamState* a, const StreamState* b) {
              return a->id.value < b->id.value;
            });
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(order.size());
  for (StreamState* s : order) {
    std::unique_lock<std::mutex> l(s->mu, std::try_to_lock);
    if (!l.owns_lock()) {
      stats_.lock_shard_contention.fetch_add(1, std::memory_order_relaxed);
      l.lock();
    }
    locks.push_back(std::move(l));
  }
  {
    // Pre-batch boundary per stream: actions already in a window are
    // *residue* (typically eager uploads or a previous replay) and still
    // need a conflict scan — only edges among batch members are
    // pre-resolved. The boundary is equivalently a window index (legacy
    // residue scan) and a seq threshold (index residue lookup).
    struct Boundary {
      std::size_t window = 0;
      std::uint64_t seq = 0;
    };
    std::unordered_map<std::uint32_t, Boundary> boundary;
    std::unordered_map<std::uint32_t, StreamState*> by_id;
    for (StreamState* s : order) {
      boundary.emplace(s->id.value, Boundary{s->window.size(), s->next_seq});
      by_id.emplace(s->id.value, s);
    }
    for (const PrelinkedAction& entry : batch) {
      const std::shared_ptr<ActionRecord>& record = entry.record;
      StreamState& s = *by_id.at(record->stream.value);
      require_domain_alive(s.domain);
      record->id =
          ActionId{next_action_id_.fetch_add(1, std::memory_order_relaxed)};
      record->seq = s.next_seq++;
      record->graph = graph_id;
      if (record->type == ActionType::transfer && s.domain != kHostDomain) {
        record->transfer_seq =
            next_transfer_seq_[s.domain.value].fetch_add(
                1, std::memory_order_relaxed);
      }

      DepState dep;
      dep.record = record;
      dep.stream = &s;

      if (s.policy == OrderPolicy::strict_fifo) {
        std::size_t steps = 0;
        for (auto it = s.window.rbegin(); it != s.window.rend(); ++it) {
          ++steps;
          if ((*it)->state != ActionRecord::State::done) {
            DepState* prev = dep_find((*it)->id);
            require(prev != nullptr, "missing strict-chain predecessor",
                    Errc::internal);
            prev->successors.push_back(record->id);
            dep.blockers = 1;
            break;
          }
        }
        stats_.dep_scan_steps.fetch_add(steps, std::memory_order_relaxed);
      } else {
        // Residue analysis against pre-batch window entries only; edges
        // within the batch come from the capture.
        const Boundary bound = boundary.at(s.id.value);
        const std::vector<ActionId> blockers =
            dep_legacy_ ? legacy_blockers(s, *record, bound.window)
                        : indexed_blockers(s, *record, bound.seq,
                                           bound.window);
        for (const ActionId pred : blockers) {
          DepState* pd = dep_find(pred);
          require(pd != nullptr, "missing predecessor dep entry",
                  Errc::internal);
          pd->successors.push_back(record->id);
        }
        dep.blockers = blockers.size();
        for (const std::uint32_t pred : entry.preds) {
          // In-batch preds were admitted earlier in this loop and cannot
          // have completed: their stream locks are held for the whole
          // batch. Their seqs are >= the boundary, so captured edges
          // never collide with residue edges.
          DepState* pd = dep_find(batch[pred].record->id);
          require(pd != nullptr, "missing in-batch predecessor",
                  Errc::internal);
          pd->successors.push_back(record->id);
          ++dep.blockers;
        }
        stats_.deps_reused.fetch_add(entry.preds.size(),
                                     std::memory_order_relaxed);
      }

      s.window.push_back(record);
      if (!dep_legacy_ && s.policy != OrderPolicy::strict_fifo) {
        for (const Operand& op : record->operands) {
          s.index.insert(op, record->id, record->seq);
        }
        if (record->full_barrier) {
          s.barriers.push_back(BarrierRef{record->id, record->seq});
        }
      }
      if (dep.blockers == 0) {
        record->state = ActionRecord::State::dispatched;
        if (record != s.window.front()) {
          stats_.ooo_dispatches.fetch_add(1, std::memory_order_relaxed);
        }
        ready.push_back(record);
      }
      {
        DepShard& shard = shard_for(record->id);
        lock_counted(shard.mu);
        const std::lock_guard<std::mutex> sl(shard.mu, std::adopt_lock);
        shard.map.emplace(record->id, std::move(dep));
      }

      TenantCounters* tc = slice_of(s);
      switch (record->type) {
        case ActionType::compute:
          stats_.computes_enqueued.fetch_add(1, std::memory_order_relaxed);
          if (tc != nullptr) {
            tc->computes_enqueued.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case ActionType::transfer:
          stats_.transfers_enqueued.fetch_add(1, std::memory_order_relaxed);
          if (tc != nullptr) {
            tc->transfers_enqueued.fetch_add(1, std::memory_order_relaxed);
          }
          if (s.domain == kHostDomain) {
            stats_.transfers_aliased_away.fetch_add(
                1, std::memory_order_relaxed);
          }
          break;
        default:
          stats_.syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
          if (tc != nullptr) {
            tc->syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
          }
          break;
      }

      if (trace_ != nullptr) {
        TraceRecorder::Record tr;
        tr.action = record->id;
        tr.stream = record->stream;
        tr.domain = s.domain;
        tr.type = record->type;
        tr.graph = graph_id;
        tr.tenant = record->tenant;
        tr.session = record->session;
        if (record->type == ActionType::compute) {
          tr.label = record->compute.kernel;
          tr.flops = record->compute.flops;
        } else if (record->type == ActionType::transfer) {
          tr.label = record->transfer.peer != kHostDomain ? "xfer d2d"
                     : record->transfer.dir == XferDir::src_to_sink
                         ? "xfer h2d"
                         : "xfer d2h";
          tr.bytes = record->transfer.length;
        }
        tr.enqueue_s = executor_->now();
        trace_->on_enqueue(tr);
      }
    }
    stats_.graph_replays.fetch_add(1, std::memory_order_relaxed);
  }
  locks.clear();
  for (const auto& record : ready) {
    dispatch(record);
  }
}

void Runtime::dispatch(const std::shared_ptr<ActionRecord>& record) {
  log_debug("dispatch action %u (stream %u seq %llu type %d)",
            record->id.value, record->stream.value,
            static_cast<unsigned long long>(record->seq),
            static_cast<int>(record->type));
  // Pin (and, where spilled, re-admit + re-upload) every incarnation the
  // action touches, before the elision decision — a refetch validates
  // exactly the ranges elision then tests. Failure (budget cannot hold
  // the operands, quota veto) fails the action like a thrown task body.
  for (;;) {
    try {
      prepare_residency(record);
      break;
    } catch (const DeferDispatch& defer) {
      // Out-of-core backpressure: the operands cannot be admitted while
      // other in-flight actions pin every victim. Drop the pins taken so
      // far (holding them across the wait would deadlock two parked
      // actions against each other — parked actions hold no pins, so the
      // pins blocking us always belong to executor-submitted work whose
      // completion will call retry_deferred) and park. The park and the
      // blocked-recheck share one governor critical section: a release
      // sneaking in between the defer decision and the push would
      // otherwise retry an empty list and strand this action forever.
      bool parked = false;
      {
        const std::scoped_lock gov(gov_mu_);
        for (const auto& [buffer, domain] : record->pins) {
          governor_.unpin(domain, buffer);
        }
        record->pins.clear();
        // Park iff an externally-pinned resident remains: its release is
        // the wakeup that will retry us, so parking is safe, and retrying
        // before it releases cannot help — the operand set already failed
        // to fit around those pins once, and with our own pins dropped
        // the partial-admit/defer cycle would otherwise spin forever,
        // evicting our own operands to re-admit each other.
        const bool still_blocked =
            governor_.has_external_pins(defer.domain, defer.kind,
                                        record->pins);
        if (still_blocked) {
          ooc_deferred_.push_back(record);
          parked = true;
        }
      }
      if (!parked) {
        continue;  // capacity freed in the race window — redo now
      }
      log_debug("deferred action %u (buffer %u needs %zu bytes on domain %u)",
                record->id.value, defer.buffer.value, defer.bytes,
                defer.domain.value);
      if (trace_ != nullptr) {
        trace_->on_ooc("defer", defer.buffer, defer.domain, defer.bytes,
                       executor_->now());
      }
      return;
    } catch (...) {
      fail_action(record->id, std::current_exception());
      return;
    }
  }
  if (try_elide(record)) {
    // Zero-cost completion through the normal path: the completion event
    // fires, the window/index retire, successors unblock — FIFO and
    // event semantics are exactly those of a real transfer. The executor
    // is never involved, and crucially next_transfer_fault is never
    // consulted: fault decisions stay keyed to the transfers that
    // actually attempt the link, so a ScheduledFault aimed at this
    // transfer id is not consumed by a no-op.
    if (trace_ != nullptr) {
      trace_->on_dispatch(record->id, executor_->now());
      trace_->on_elide(record->id);
    }
    complete_action(record->id);
    return;
  }
  if (trace_ != nullptr) {
    trace_->on_dispatch(record->id, executor_->now());
  }
  executor_->execute(record,
                     [this, id = record->id] { complete_action(id); });
}

bool Runtime::try_elide(const std::shared_ptr<ActionRecord>& record) {
  if (!coherence_elide_ || record->type != ActionType::transfer) {
    return false;
  }
  const StreamState& estream = stream_state(record->stream);
  const DomainId sink = estream.domain;
  if (sink == kHostDomain) {
    return false;  // host streams alias transfers away already
  }
  const TransferPayload& t = record->transfer;
  if (t.length == 0) {
    return false;
  }
  std::shared_lock buffers(buffers_mutex_);
  Buffer* buf = nullptr;
  try {
    buf = &buffers_.get(t.buffer);
  } catch (const Error&) {
    return false;  // destroyed while queued; let the executor's path cope
  }
  // Both endpoints valid over the range => byte-identical data. For a
  // device->device move the staging would also rewrite the host copy, so
  // the host must be valid too for the elision to be effect-free.
  if (!buf->valid_over(kHostDomain, t.offset, t.length) ||
      !buf->valid_over(sink, t.offset, t.length) ||
      (t.peer != kHostDomain &&
       !buf->valid_over(t.peer, t.offset, t.length))) {
    return false;
  }
  if (coherence_oracle_ && executor_->executes_payloads()) {
    stats_.coherence_oracle_checks.fetch_add(1, std::memory_order_relaxed);
    const std::byte* host = buf->local_address(kHostDomain, t.offset);
    const std::byte* dev = buf->local_address(sink, t.offset);
    bool match = std::memcmp(host, dev, t.length) == 0;
    if (match && t.peer != kHostDomain) {
      const std::byte* peer = buf->local_address(t.peer, t.offset);
      match = std::memcmp(peer, dev, t.length) == 0;
    }
    if (!match) {
      log_error("coherence oracle: elision of action %u (buffer %u offset "
                "%zu len %zu) would have changed bytes",
                record->id.value, t.buffer.value, t.offset, t.length);
      throw Error(Errc::internal,
                  "transfer-elision oracle mismatch (HS_COHERENCE_ORACLE): "
                  "an incarnation marked valid holds different bytes — "
                  "likely an untracked host write (see "
                  "Runtime::note_host_write)");
    }
  }
  record->elided = true;
  const std::uint64_t moved =
      t.peer != kHostDomain ? 2 * t.length : t.length;
  stats_.transfers_elided.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_elided.fetch_add(moved, std::memory_order_relaxed);
  if (TenantCounters* tc = slice_of(estream)) {
    tc->transfers_elided.fetch_add(1, std::memory_order_relaxed);
    tc->bytes_elided.fetch_add(moved, std::memory_order_relaxed);
  }
  return true;
}

void Runtime::complete_action(ActionId id) {
  // Claim gate: an action can race between its executor `done` callback
  // and an early completion by stream_cancel/mark_domain_lost. Whoever
  // sets `claimed` first (under the action's stream lock) delivers the
  // completion; the loser becomes a no-op here.
  //
  // Lock order note: the shard lookup copies the record out and drops
  // the shard lock *before* taking the stream lock — a shard lock is
  // never held while acquiring a stream lock.
  std::shared_ptr<ActionRecord> record;
  {
    DepShard& shard = shard_for(id);
    lock_counted(shard.mu);
    const std::lock_guard<std::mutex> lock(shard.mu, std::adopt_lock);
    const auto it = shard.map.find(id);
    if (it == shard.map.end()) {
      return;
    }
    record = it->second.record;
  }
  {
    StreamState* stream = nullptr;
    {
      std::shared_lock streams(streams_mutex_);
      stream = streams_[record->stream.value].get();
    }
    lock_counted(stream->mu);
    const std::lock_guard<std::mutex> lock(stream->mu, std::adopt_lock);
    // claimed==false implies the dep entry still exists: erasure only
    // happens after a claim, under this same stream lock.
    if (record->claimed) {
      return;
    }
    record->claimed = true;
  }
  finish_action(std::move(record));
}

void Runtime::finish_action(std::shared_ptr<ActionRecord> record) {
  // MPSC completion queue: any thread may push; the first pusher becomes
  // the drainer and applies completions one at a time in push (FIFO)
  // order — a single unblocking pass, so successor wakeups stay
  // deterministic, and recursion through completion callbacks (which may
  // chain into another enqueue or another runtime) stays bounded: a
  // callback that re-enters finish_action while a drain is active just
  // enqueues and returns.
  {
    const std::scoped_lock lock(completion_mutex_);
    completion_queue_.push_back(std::move(record));
    if (completion_draining_) {
      return;
    }
    completion_draining_ = true;
  }
  for (;;) {
    std::shared_ptr<ActionRecord> next;
    {
      const std::scoped_lock lock(completion_mutex_);
      if (completion_queue_.empty()) {
        completion_draining_ = false;
        return;
      }
      next = std::move(completion_queue_.front());
      completion_queue_.pop_front();
    }
    process_completion(next);
  }
}

void Runtime::notify_waiters() {
  // The empty critical section is the fence against lost wakeups: a host
  // waiter evaluates its (self-locking) predicate while holding mutex_,
  // so we cannot complete-and-notify entirely between its predicate
  // check and its cv wait.
  { const std::scoped_lock lock(mutex_); }
  cv_.notify_all();
}

void Runtime::process_completion(const std::shared_ptr<ActionRecord>& record) {
  std::shared_ptr<EventState> completion;
  std::vector<std::shared_ptr<ActionRecord>> ready;
  const ActionId id = record->id;
  StreamState* stream_ptr = nullptr;
  {
    std::shared_lock streams(streams_mutex_);
    stream_ptr = streams_[record->stream.value].get();
  }
  StreamState& stream = *stream_ptr;
  {
    lock_counted(stream.mu);
    const std::lock_guard<std::mutex> lock(stream.mu, std::adopt_lock);
    DepState dep;
    {
      DepShard& shard = shard_for(id);
      lock_counted(shard.mu);
      const std::lock_guard<std::mutex> sl(shard.mu, std::adopt_lock);
      const auto it = shard.map.find(id);
      require(it != shard.map.end(), "completion of unknown action",
              Errc::internal);
      dep = std::move(it->second);
      shard.map.erase(it);
    }

    ActionRecord& rec = *record;
    rec.state = ActionRecord::State::done;
    completion = rec.completion;
    // Cancelled and failed actions were already counted when they were
    // claimed (stream_cancel / mark_domain_lost / fail_action); counting
    // them here again would break the completed+failed+cancelled ==
    // enqueued invariant the loss-stress tests pin down.
    TenantCounters* tc = slice_of(stream);
    if (!rec.cancelled && !rec.failed) {
      stats_.actions_completed.fetch_add(1, std::memory_order_relaxed);
      if (tc != nullptr) {
        tc->actions_completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const DomainId completion_domain = stream.domain;
    if (rec.type == ActionType::transfer && !rec.cancelled && !rec.elided &&
        completion_domain != kHostDomain) {
      // A device->device move is two physical hops through the host.
      const std::uint64_t moved = rec.transfer.peer != kHostDomain
                                      ? 2 * rec.transfer.length
                                      : rec.transfer.length;
      stats_.bytes_transferred.fetch_add(moved, std::memory_order_relaxed);
      if (tc != nullptr) {
        tc->bytes_transferred.fetch_add(moved, std::memory_order_relaxed);
      }
    }
    // Coherence bookkeeping (see Buffer): a compute that ran to
    // completion validates the ranges it wrote in its own domain and
    // invalidates every other incarnation there; a completed transfer
    // copies the source's validity onto the destination over the moved
    // range. Cancelled actions had no effects; a failed body's partial
    // effects are garbage and cost the writer its own validity. Elided
    // transfers moved nothing and change nothing (both ends were already
    // valid). Dirty ranges — the evacuate contract — derive from the
    // same intervals as valid(device) - valid(host).
    if (coherence_track_ && !rec.cancelled) {
      std::shared_lock buffers(buffers_mutex_);
      try {
        if (rec.type == ActionType::compute) {
          for (const Operand& op : rec.operands) {
            if (!writes(op.access)) {
              continue;
            }
            Buffer& buf = buffers_.get(op.buffer);
            if (rec.failed) {
              buf.note_write_garbage(completion_domain, op.offset,
                                     op.length);
            } else {
              buf.note_compute_write(completion_domain, op.offset,
                                     op.length);
            }
          }
        } else if (rec.type == ActionType::transfer && !rec.failed &&
                   !rec.elided && completion_domain != kHostDomain) {
          Buffer& buf = buffers_.get(rec.transfer.buffer);
          const std::size_t off = rec.transfer.offset;
          const std::size_t len = rec.transfer.length;
          if (rec.transfer.peer != kHostDomain) {
            // Two hops: peer -> host staging, then host -> sink.
            buf.note_transfer(rec.transfer.peer, kHostDomain, off, len);
            buf.note_transfer(kHostDomain, completion_domain, off, len);
          } else if (rec.transfer.dir == XferDir::src_to_sink) {
            buf.note_transfer(kHostDomain, completion_domain, off, len);
          } else {
            buf.note_transfer(completion_domain, kHostDomain, off, len);
          }
        }
      } catch (const Error&) {
        // The buffer was destroyed while this action drained; nothing
        // left to track.
      }
    }

    // Retire the action from the dependence index before unblocking
    // successors (they recompute nothing, but the invariant "the index
    // holds exactly the incomplete window" keeps later admissions exact).
    if (!dep_legacy_ && stream.policy != OrderPolicy::strict_fifo) {
      for (const Operand& op : rec.operands) {
        stream.index.erase(op, id);
      }
      if (rec.full_barrier) {
        std::erase_if(stream.barriers, [id](const BarrierRef& b) {
          return b.action == id;
        });
      }
    }

    auto& window = stream.window;
    while (!window.empty() &&
           window.front()->state == ActionRecord::State::done) {
      window.pop_front();
    }

    for (const ActionId succ_id : dep.successors) {
      // Successors are same-stream (dependences are intra-stream), so
      // this stream's lock covers their DepState fields and the entries
      // cannot be erased from under us.
      DepState* succ = dep_find(succ_id);
      if (succ == nullptr) {
        continue;
      }
      require(succ->blockers > 0, "dependence underflow", Errc::internal);
      if (--succ->blockers == 0 &&
          succ->record->state == ActionRecord::State::pending) {
        succ->record->state = ActionRecord::State::dispatched;
        if (!succ->stream->window.empty() &&
            succ->record != succ->stream->window.front()) {
          stats_.ooo_dispatches.fetch_add(1, std::memory_order_relaxed);
        }
        ready.push_back(succ->record);
      }
    }
  }
  if (trace_ != nullptr) {
    trace_->on_complete(id, executor_->now());
  }
  // Residency pins drop exactly once here — completion, cancellation,
  // failure, and elision all drain through this claim-gated path — so
  // the operands become eviction-eligible again. Freshly unpinned
  // victims are exactly what a backpressure-parked dispatch waits for,
  // so give the deferred queue first claim on the capacity.
  if (release_pins(record)) {
    retry_deferred();
  }
  // Release the admission gate outside every lock (the hook may take its
  // own mutex and wake enqueuers blocked in before_admit). Exactly once
  // per gated action — completion, cancellation, failure, and elision all
  // drain through here behind the claim gate.
  if (record->gated) {
    if (AdmissionHook* hook =
            admission_hook_.load(std::memory_order_acquire)) {
      hook->on_complete(record->tenant, record->type,
                        record->type == ActionType::transfer
                            ? record->transfer.length
                            : 0);
    }
  }
  // Fire the completion event *before* waking host waiters: a host
  // blocked in event_wait_host re-checks fired() on wakeup, so the event
  // must already be visible.
  for (auto& callback : completion->fire()) {
    callback();
  }
  notify_waiters();
  for (const auto& r : ready) {
    dispatch(r);
  }
}

// --- Host-side synchronization ----------------------------------------------

void Runtime::fail_action(ActionId id, std::exception_ptr error) {
  std::shared_ptr<ActionRecord> record;
  {
    DepShard& shard = shard_for(id);
    lock_counted(shard.mu);
    const std::lock_guard<std::mutex> lock(shard.mu, std::adopt_lock);
    const auto it = shard.map.find(id);
    if (it == shard.map.end()) {
      return;  // already failed by cancellation or domain loss
    }
    record = it->second.record;
  }
  {
    StreamState* stream = nullptr;
    {
      std::shared_lock streams(streams_mutex_);
      stream = streams_[record->stream.value].get();
    }
    lock_counted(stream->mu);
    const std::lock_guard<std::mutex> lock(stream->mu, std::adopt_lock);
    if (record->claimed) {
      return;
    }
    record->claimed = true;
    record->failed = true;
  }
  stats_.actions_failed.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(mutex_);
    push_pending_error(std::move(error));
  }
  finish_action(std::move(record));
}

void Runtime::push_pending_error(std::exception_ptr error) {
  // Bounded so a fault storm between two sync points cannot grow the
  // queue without limit; one error per failure mode is plenty for
  // diagnosis and the counters hold the totals.
  constexpr std::size_t kMaxPendingErrors = 16;
  if (pending_errors_.size() >= kMaxPendingErrors) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      log_error("pending-error queue full; dropping: %s", e.what());
    }
    return;
  }
  pending_errors_.push_back(std::move(error));
}

bool Runtime::has_pending_error() const {
  const std::scoped_lock lock(mutex_);
  return !pending_errors_.empty();
}

std::size_t Runtime::clear_pending_errors() {
  const std::scoped_lock lock(mutex_);
  const std::size_t dropped = pending_errors_.size();
  pending_errors_.clear();
  return dropped;
}

Status Runtime::take_pending_status() {
  std::exception_ptr error;
  {
    const std::scoped_lock lock(mutex_);
    if (pending_errors_.empty()) {
      return Status::ok();
    }
    error = std::move(pending_errors_.front());
    pending_errors_.pop_front();
  }
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::exception& e) {
    return Status::error(Errc::internal, e.what());
  }
}

namespace {

/// Rethrows (and removes) the oldest captured sink error after a sync
/// point — one per call, so each synchronize reports one failure and a
/// second error captured in between is not lost.
void rethrow_pending(std::mutex& mutex,
                     std::deque<std::exception_ptr>& pending) {
  std::exception_ptr error;
  {
    const std::scoped_lock lock(mutex);
    if (pending.empty()) {
      return;
    }
    error = std::move(pending.front());
    pending.pop_front();
  }
  std::rethrow_exception(error);
}

}  // namespace

bool Runtime::stream_idle(StreamId stream) const {
  const StreamState& s = stream_state(stream);
  const std::scoped_lock lock(s.mu);
  return s.window.empty();
}

bool Runtime::all_streams_idle() const {
  std::shared_lock streams(streams_mutex_);
  for (const auto& s : streams_) {
    const std::scoped_lock lock(s->mu);
    if (!s->window.empty()) {
      return false;
    }
  }
  return true;
}

void Runtime::stream_synchronize(StreamId stream) {
  // The predicate self-synchronizes (shared stream lookup + stream
  // lock); the executor's wait only supplies the cv rendezvous.
  executor_->wait([this, stream] { return stream_idle(stream); });
  rethrow_pending(mutex_, pending_errors_);
}

void Runtime::synchronize() {
  executor_->wait([this] { return all_streams_idle(); });
  rethrow_pending(mutex_, pending_errors_);
}

void Runtime::event_wait_host(
    std::span<const std::shared_ptr<EventState>> events, WaitMode mode) {
  executor_->wait([events, mode] {
    if (mode == WaitMode::all) {
      return std::all_of(events.begin(), events.end(),
                         [](const auto& e) { return e->fired(); });
    }
    return std::any_of(events.begin(), events.end(),
                       [](const auto& e) { return e->fired(); });
  });
}

Status Runtime::stream_synchronize(StreamId stream, double timeout_s) {
  const bool drained = executor_->wait_for(
      [this, stream] { return stream_idle(stream); }, timeout_s);
  if (!drained) {
    return Status::error(Errc::timed_out, "stream_synchronize deadline");
  }
  return take_pending_status();
}

Status Runtime::synchronize(double timeout_s) {
  const bool drained =
      executor_->wait_for([this] { return all_streams_idle(); }, timeout_s);
  if (!drained) {
    return Status::error(Errc::timed_out, "synchronize deadline");
  }
  return take_pending_status();
}

Status Runtime::event_wait_host(
    std::span<const std::shared_ptr<EventState>> events, WaitMode mode,
    double timeout_s) {
  const bool fired = executor_->wait_for(
      [events, mode] {
        if (mode == WaitMode::all) {
          return std::all_of(events.begin(), events.end(),
                             [](const auto& e) { return e->fired(); });
        }
        return std::any_of(events.begin(), events.end(),
                           [](const auto& e) { return e->fired(); });
      },
      timeout_s);
  if (!fired) {
    return Status::error(Errc::timed_out, "event_wait_host deadline");
  }
  return Status::ok();
}

// --- Fault hooks (executor interface) ---------------------------------------

FaultDecision Runtime::next_transfer_fault(DomainId domain,
                                           std::uint64_t transfer,
                                           int attempt) {
  if (!injector_.enabled()) {
    return {};  // keep the fault-free transfer hot path lock-free
  }
  const FaultDecision decision = injector_.on_transfer(domain, transfer,
                                                       attempt);
  {
    const std::scoped_lock lock(mutex_);
    switch (decision.kind) {
      case FaultKind::none:
        ++health_[domain.value].successes;
        health_sample(domain, 1.0);
        break;
      case FaultKind::transient_error:
        stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
        health_sample(domain, 0.0);
        break;
      case FaultKind::link_stall:
        stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
        ++health_[domain.value].stalls;
        health_sample(domain, 0.5);  // succeeded, but late
        break;
      case FaultKind::device_loss:
        stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
        // mark_domain_lost (which the executor calls next) pins the
        // health at zero; nothing to sample here.
        break;
    }
  }
  return decision;
}

void Runtime::note_transfer_retry(DomainId domain) {
  const std::scoped_lock lock(mutex_);
  stats_.transfers_retried.fetch_add(1, std::memory_order_relaxed);
  ++health_[domain.value].retries;
}

void Runtime::note_partial_recovery(std::uint64_t reexecuted) {
  stats_.partial_recoveries.fetch_add(1, std::memory_order_relaxed);
  stats_.actions_reexecuted.fetch_add(reexecuted, std::memory_order_relaxed);
}

void Runtime::note_transfer_chunks(std::uint64_t count) {
  stats_.transfer_chunks.fetch_add(count, std::memory_order_relaxed);
}

void Runtime::note_pipeline_span(double serial_s, double actual_s) {
  const auto us = [](double s) {
    return static_cast<std::uint64_t>(std::max(0.0, s) * 1e6);
  };
  stats_.pipeline_serial_us.fetch_add(us(serial_s),
                                      std::memory_order_relaxed);
  stats_.pipeline_actual_us.fetch_add(us(actual_s),
                                      std::memory_order_relaxed);
}

void Runtime::note_host_write(const void* proxy, std::size_t len) {
  if (!coherence_track_ || len == 0) {
    return;
  }
  std::shared_lock buffers(buffers_mutex_);
  try {
    Buffer& buf = buffers_.find_containing(proxy, len);
    buf.note_compute_write(kHostDomain, buf.offset_of(proxy), len);
  } catch (const Error&) {
    // Writes to memory no registered buffer covers are not the coherence
    // layer's business.
  }
}

Status Runtime::sync_home(BufferId id) {
  try {
    // Let executor threads finish in-flight bodies that may still touch
    // incarnation storage; callers have already synchronized, so this is
    // a cheap fence, not a drain.
    executor_->quiesce();
    std::size_t domain_count = 0;
    {
      const std::scoped_lock lock(mutex_);
      domain_count = domains_.size();
    }
    for (std::size_t d = 1; d < domain_count; ++d) {
      const DomainId domain{static_cast<std::uint32_t>(d)};
      std::vector<std::pair<std::size_t, std::size_t>> dirty;
      bool alive = false;
      {
        std::shared_lock buffers(buffers_mutex_);
        Buffer& buf = buffers_.get(id);
        if (!buf.instantiated_in(domain)) {
          continue;
        }
        dirty = buf.dirty_ranges(domain);
        alive = domains_[d].alive();
      }
      if (dirty.empty()) {
        continue;
      }
      if (!alive) {
        std::size_t bytes = 0;
        for (const auto& [offset, length] : dirty) {
          bytes += length;
        }
        return Status::error(
            Errc::data_loss,
            "sync_home: " + std::to_string(bytes) + " dirty bytes of buffer " +
                std::to_string(id.value) + " had their only current copy on "
                "lost domain " + std::to_string(d));
      }
      if (executor_->executes_payloads()) {
        for (const auto& [offset, length] : dirty) {
          std::byte* host = buffer_local(id, kHostDomain, offset, length);
          std::byte* src = buffer_local(id, domain, offset, length);
          std::memcpy(host, src, length);
        }
      }
      std::shared_lock buffers(buffers_mutex_);
      Buffer& buf = buffers_.get(id);
      for (const auto& [offset, length] : dirty) {
        buf.note_transfer(domain, kHostDomain, offset, length);
      }
    }
    return Status::ok();
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  }
}

std::vector<std::pair<std::size_t, std::size_t>> Runtime::take_ckpt_dirty(
    BufferId id) {
  std::shared_lock buffers(buffers_mutex_);
  return buffers_.get(id).take_ckpt_dirty();
}

void Runtime::mark_ckpt_dirty(BufferId id, std::size_t offset,
                              std::size_t len) {
  std::shared_lock buffers(buffers_mutex_);
  buffers_.get(id).mark_ckpt_dirty(offset, len);
}

void Runtime::note_checkpoint(std::uint64_t bytes_written,
                              std::uint64_t bytes_skipped) {
  stats_.checkpoints_taken.fetch_add(1, std::memory_order_relaxed);
  stats_.checkpoint_bytes_written.fetch_add(bytes_written,
                                            std::memory_order_relaxed);
  stats_.checkpoint_bytes_skipped_clean.fetch_add(bytes_skipped,
                                                  std::memory_order_relaxed);
}

void Runtime::note_restore() {
  stats_.restores_performed.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::health_sample(DomainId id, double outcome) {
  if (health_[id.value].sample(outcome, config_.health)) {
    stats_.links_degraded.fetch_add(1, std::memory_order_relaxed);
    log_error("link to domain %u degraded (health %.3f); steering new work "
              "away", id.value, health_[id.value].score);
  }
}

LinkHealth Runtime::link_health(DomainId id) const {
  const std::scoped_lock lock(mutex_);
  require(id.value < domains_.size(), "unknown domain", Errc::not_found);
  return health_[id.value];
}

bool Runtime::link_degraded(DomainId id) const {
  const std::scoped_lock lock(mutex_);
  require(id.value < domains_.size(), "unknown domain", Errc::not_found);
  return health_[id.value].degraded;
}

DomainId Runtime::pick_healthy(std::span<const DomainId> candidates) {
  require(!candidates.empty(), "pick_healthy needs candidates");
  const std::scoped_lock lock(mutex_);
  const DomainId preferred = candidates.front();
  const DomainId* fallback = nullptr;
  for (const DomainId& c : candidates) {
    require(c.value < domains_.size(), "unknown domain", Errc::not_found);
    if (!domains_[c.value].alive()) {
      continue;
    }
    if (!health_[c.value].degraded) {
      if (c != preferred) {
        stats_.placements_steered.fetch_add(1, std::memory_order_relaxed);
      }
      return c;
    }
    if (fallback == nullptr) {
      fallback = &c;  // degraded beats dead
    }
  }
  if (fallback != nullptr) {
    if (*fallback != preferred) {
      stats_.placements_steered.fetch_add(1, std::memory_order_relaxed);
    }
    return *fallback;
  }
  throw Error(Errc::device_lost, "pick_healthy: no candidate domain alive");
}

// --- Multi-tenant service mode ----------------------------------------------

std::uint32_t Runtime::tenant_register() {
  const std::unique_lock lock(tenants_mutex_);
  tenant_slices_.emplace_back();
  return static_cast<std::uint32_t>(tenant_slices_.size());
}

std::size_t Runtime::tenant_count() const {
  const std::shared_lock lock(tenants_mutex_);
  return tenant_slices_.size();
}

TenantStatsSlice Runtime::tenant_slice(std::uint32_t tenant) const {
  const std::shared_lock lock(tenants_mutex_);
  require(tenant >= 1 && tenant <= tenant_slices_.size(),
          "unknown tenant id", Errc::not_found);
  const TenantCounters& c = tenant_slices_[tenant - 1];
  const auto get = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  TenantStatsSlice out;
  out.computes_enqueued = get(c.computes_enqueued);
  out.transfers_enqueued = get(c.transfers_enqueued);
  out.syncs_enqueued = get(c.syncs_enqueued);
  out.actions_completed = get(c.actions_completed);
  out.bytes_transferred = get(c.bytes_transferred);
  out.transfers_elided = get(c.transfers_elided);
  out.bytes_elided = get(c.bytes_elided);
  out.placements_steered = get(c.placements_steered);
  return out;
}

void Runtime::note_tenant_placement(std::uint32_t tenant) {
  const std::shared_lock lock(tenants_mutex_);
  require(tenant >= 1 && tenant <= tenant_slices_.size(),
          "unknown tenant id", Errc::not_found);
  tenant_slices_[tenant - 1].placements_steered.fetch_add(
      1, std::memory_order_relaxed);
}

void Runtime::stream_bind_tenant(StreamId stream, std::uint32_t tenant,
                                 std::uint32_t session) {
  StreamState& s = stream_state(stream);
  TenantCounters* slice = nullptr;
  if (tenant != 0) {
    const std::shared_lock lock(tenants_mutex_);
    require(tenant <= tenant_slices_.size(), "unknown tenant id",
            Errc::not_found);
    slice = &tenant_slices_[tenant - 1];
  }
  s.tenant.store(tenant, std::memory_order_relaxed);
  s.session.store(session, std::memory_order_relaxed);
  s.slice.store(slice, std::memory_order_release);
}

std::uint32_t Runtime::stream_tenant(StreamId stream) const {
  return stream_state(stream).tenant.load(std::memory_order_relaxed);
}

void Runtime::tag_and_gate(const StreamState& stream, ActionRecord& record,
                           std::size_t bytes) {
  const std::uint32_t tenant = stream.tenant.load(std::memory_order_relaxed);
  if (tenant == 0) {
    return;
  }
  record.tenant = tenant;
  record.session = stream.session.load(std::memory_order_relaxed);
  if (AdmissionHook* hook = admission_hook_.load(std::memory_order_acquire)) {
    hook->before_admit(tenant, record.type, bytes);
    record.gated = true;
  }
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  out.computes_enqueued = get(stats_.computes_enqueued);
  out.transfers_enqueued = get(stats_.transfers_enqueued);
  out.syncs_enqueued = get(stats_.syncs_enqueued);
  out.actions_completed = get(stats_.actions_completed);
  out.actions_failed = get(stats_.actions_failed);
  out.transfers_aliased_away = get(stats_.transfers_aliased_away);
  out.bytes_transferred = get(stats_.bytes_transferred);
  out.ooo_dispatches = get(stats_.ooo_dispatches);
  out.faults_injected = get(stats_.faults_injected);
  out.transfers_retried = get(stats_.transfers_retried);
  out.actions_cancelled = get(stats_.actions_cancelled);
  out.domains_lost = get(stats_.domains_lost);
  out.graphs_captured = get(stats_.graphs_captured);
  out.graph_replays = get(stats_.graph_replays);
  out.deps_reused = get(stats_.deps_reused);
  out.transfers_coalesced = get(stats_.transfers_coalesced);
  out.links_degraded = get(stats_.links_degraded);
  out.placements_steered = get(stats_.placements_steered);
  out.partial_recoveries = get(stats_.partial_recoveries);
  out.actions_reexecuted = get(stats_.actions_reexecuted);
  out.dep_index_hits = get(stats_.dep_index_hits);
  out.dep_scan_steps = get(stats_.dep_scan_steps);
  out.lock_shard_contention = get(stats_.lock_shard_contention);
  out.dep_oracle_checks = get(stats_.dep_oracle_checks);
  out.transfers_elided = get(stats_.transfers_elided);
  out.bytes_elided = get(stats_.bytes_elided);
  out.transfer_chunks = get(stats_.transfer_chunks);
  out.pipeline_serial_us = get(stats_.pipeline_serial_us);
  out.pipeline_actual_us = get(stats_.pipeline_actual_us);
  out.coherence_oracle_checks = get(stats_.coherence_oracle_checks);
  out.checkpoints_taken = get(stats_.checkpoints_taken);
  out.checkpoint_bytes_written = get(stats_.checkpoint_bytes_written);
  out.checkpoint_bytes_skipped_clean =
      get(stats_.checkpoint_bytes_skipped_clean);
  out.restores_performed = get(stats_.restores_performed);
  out.evictions = get(stats_.evictions);
  out.spill_bytes_written = get(stats_.spill_bytes_written);
  out.spill_bytes_dropped_clean = get(stats_.spill_bytes_dropped_clean);
  out.refetches = get(stats_.refetches);
  return out;
}

// --- TaskContext -------------------------------------------------------------

void* TaskContext::translate(const void* proxy, std::size_t len) const {
  return runtime_.translate(proxy, len, domain_);
}

std::size_t TaskContext::operand_count() const noexcept {
  return action_ == nullptr ? 0 : action_->operands.size();
}

void* TaskContext::operand_local(std::size_t index) const {
  require(action_ != nullptr, "no executing action bound to this context",
          Errc::invalid_argument);
  require(index < action_->operands.size(), "operand index out of range",
          Errc::out_of_range);
  const Operand& op = action_->operands[index];
  return runtime_.buffer_local(op.buffer, domain_, op.offset, op.length);
}

}  // namespace hs
