#pragma once

// Execution tracing.
//
// The paper's productivity argument leans on "transparency and control":
// a tuner must be able to see where actions waited and what overlapped
// what. TraceRecorder captures, for every action, the enqueue time, the
// dependence-ready (dispatch) time and the completion time — on whatever
// clock the executor runs (wall for threaded, virtual for simulated) —
// and exports Chrome trace-event JSON (chrome://tracing, Perfetto) with
// one process row per domain and one thread row per stream.

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hs {

class TraceRecorder {
 public:
  struct Record {
    ActionId action;
    StreamId stream;
    DomainId domain;
    ActionType type = ActionType::compute;
    std::uint32_t graph = 0; ///< TaskGraph id for replayed actions (0 = eager)
    std::uint32_t tenant = 0;  ///< service-layer tenant id (0 = untagged)
    std::uint32_t session = 0; ///< service-layer session id (0 = untagged)
    std::string label;       ///< kernel name / "xfer h2d" / ...
    double enqueue_s = 0.0;  ///< admitted into the stream window
    double dispatch_s = 0.0; ///< dependence-ready, handed to the executor
    double complete_s = 0.0; ///< effects visible
    double flops = 0.0;
    std::size_t bytes = 0;
    /// Transfer completed as a zero-cost no-op: the coherence layer
    /// proved the destination range already valid (see runtime.cpp).
    bool elided = false;
  };

  /// Out-of-core instant event: the memory governor spilled ("evict") or
  /// re-admitted ("refetch") a buffer incarnation. Not tied to an action
  /// record — evictions happen on whatever dispatch or instantiate call
  /// needed the room.
  struct OocEvent {
    std::string kind;  ///< "evict" | "refetch"
    BufferId buffer;
    DomainId domain;
    std::size_t bytes = 0;  ///< evict: dirty bytes written back;
                            ///< refetch: bytes re-uploaded
    double when_s = 0.0;
  };

  void on_enqueue(const Record& partial);
  void on_dispatch(ActionId id, double now);
  void on_complete(ActionId id, double now);
  /// Marks a transfer record as elided; its span collapses to zero width
  /// and its chrome event carries an "elided":1 arg.
  void on_elide(ActionId id);
  /// Records an out-of-core instant event (evict/refetch).
  void on_ooc(std::string kind, BufferId buffer, DomainId domain,
              std::size_t bytes, double now);

  /// Snapshot of all records (completed and in flight).
  [[nodiscard]] std::vector<Record> records() const;
  [[nodiscard]] std::size_t size() const;
  /// Snapshot of the out-of-core events, in occurrence order.
  [[nodiscard]] std::vector<OocEvent> ooc_events() const;

  /// Writes Chrome trace-event JSON. Timestamps are microseconds;
  /// "pid" = domain, "tid" = stream. Each action emits a complete event
  /// for its execution span plus an optional flow-visible wait span
  /// (enqueue -> dispatch) when it spent time blocked.
  void write_chrome_trace(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Record> records_;        // indexed by insertion
  std::vector<std::size_t> by_action_; // action id -> index (dense ids)
  std::vector<OocEvent> ooc_;          // evict/refetch instants, in order
};

}  // namespace hs
