#include "core/task_context.hpp"

#include "threading/team.hpp"

namespace hs {

void TaskContext::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  if (team_ != nullptr) {
    team_->parallel_for(count, body);
    return;
  }
  // Simulation backend: no physical team, iterations run serially; the
  // simulator's cost model accounts for the logical team width instead.
  for (std::size_t i = 0; i < count; ++i) {
    body(i);
  }
}

}  // namespace hs
