#pragma once

// The hetstream core runtime ("core API" layer).
//
// Owns the three hStreams abstractions — domains, streams, buffers — and
// the dependence semantics that connect them:
//
//   * Actions enqueued into a stream retain FIFO *semantics*: their
//     effects must be those of in-order execution.
//   * Under OrderPolicy::relaxed_fifo (the hStreams model), an action may
//     *execute* as soon as no earlier incomplete action in its stream has
//     a conflicting memory operand (RAW/WAR/WAW on buffer byte ranges).
//   * Under OrderPolicy::strict_fifo (the CUDA Streams model), an action
//     waits for all earlier actions in its stream.
//   * Across streams (and between streams and the host) there are no
//     implicit dependences; events are the only ordering mechanism.
//
// Execution itself — threads and time — is delegated to an Executor
// backend (threaded or simulated).

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/action.hpp"
#include "core/buffer.hpp"
#include "core/domain.hpp"
#include "core/executor.hpp"
#include "core/memory_governor.hpp"
#include "core/task_context.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "interconnect/buffer_pool.hpp"
#include "interconnect/fault.hpp"
#include "interconnect/health.hpp"
#include "interconnect/topology.hpp"
#include "threading/cpu_mask.hpp"

namespace hs {

namespace ckpt {
class CheckpointManager;
struct RestoreInfo;
}  // namespace ckpt

/// A memory operand reference in proxy address terms, as passed by users.
struct OperandRef {
  const void* ptr = nullptr;
  std::size_t len = 0;
  Access access = Access::in;
};

/// Counters exposed for the overhead bench and tests.
struct RuntimeStats {
  std::uint64_t computes_enqueued = 0;
  std::uint64_t transfers_enqueued = 0;
  std::uint64_t syncs_enqueued = 0;
  std::uint64_t actions_completed = 0;
  std::uint64_t actions_failed = 0;  ///< task bodies that threw
  std::uint64_t transfers_aliased_away = 0;  ///< host-as-target no-ops
  std::uint64_t bytes_transferred = 0;
  std::uint64_t ooo_dispatches = 0;  ///< actions dispatched past an earlier
                                     ///< incomplete action (relaxed only)
  std::uint64_t faults_injected = 0;    ///< interconnect faults delivered
  std::uint64_t transfers_retried = 0;  ///< backoff retries after transients
  std::uint64_t actions_cancelled = 0;  ///< drained by stream_cancel
  std::uint64_t domains_lost = 0;       ///< devices declared dead
  std::uint64_t graphs_captured = 0;    ///< task graphs recorded (graph/)
  std::uint64_t graph_replays = 0;      ///< graph launches via admit_prelinked
  std::uint64_t deps_reused = 0;  ///< captured dependence edges replayed
                                  ///< without re-running conflict analysis
  std::uint64_t transfers_coalesced = 0;  ///< transfer nodes merged/dropped
                                          ///< by graph passes
  std::uint64_t links_degraded = 0;    ///< links that crossed into degraded
  std::uint64_t placements_steered = 0;  ///< pick_healthy calls that avoided
                                         ///< a degraded (or dead) choice
  std::uint64_t partial_recoveries = 0;  ///< graph-based subset re-launches
  std::uint64_t actions_reexecuted = 0;  ///< actions re-admitted by recovery
  std::uint64_t dep_index_hits = 0;   ///< dependence edges found via the
                                      ///< per-buffer interval index
  std::uint64_t dep_scan_steps = 0;   ///< elementary dependence-analysis
                                      ///< steps: index segments/entries
                                      ///< visited plus window entries
                                      ///< scanned on legacy/strict/barrier
                                      ///< paths
  std::uint64_t lock_shard_contention = 0;  ///< contended acquisitions of a
                                            ///< stream or dep-shard lock
  std::uint64_t dep_oracle_checks = 0;  ///< admissions cross-checked against
                                        ///< the legacy pairwise scan
  std::uint64_t transfers_elided = 0;  ///< transfers completed as no-ops:
                                       ///< destination range already valid
  std::uint64_t bytes_elided = 0;      ///< bytes those no-ops did not move
  std::uint64_t transfer_chunks = 0;   ///< chunks of pipelined multi-hop
                                       ///< transfers submitted by executors
  std::uint64_t pipeline_serial_us = 0;  ///< modeled serial (unchunked
                                         ///< two-hop) micros of pipelined
                                         ///< transfers
  std::uint64_t pipeline_actual_us = 0;  ///< observed micros of the same
                                         ///< transfers; serial/actual is
                                         ///< the hop-overlap ratio
  std::uint64_t coherence_oracle_checks = 0;  ///< elisions cross-checked
                                              ///< byte-for-byte
                                              ///< (HS_COHERENCE_ORACLE)
  std::uint64_t checkpoints_taken = 0;   ///< durable epochs committed
  std::uint64_t checkpoint_bytes_written = 0;  ///< chunk payload bytes
                                               ///< persisted across epochs
  std::uint64_t checkpoint_bytes_skipped_clean = 0;  ///< bytes the validity
                                                     ///< maps proved unchanged
                                                     ///< since the last epoch
  std::uint64_t restores_performed = 0;  ///< restore_from_checkpoint calls
                                         ///< that rebound buffer contents
  std::uint64_t evictions = 0;  ///< incarnations spilled by the memory
                                ///< governor to make room under a budget
  std::uint64_t spill_bytes_written = 0;  ///< dirty bytes synced home by
                                          ///< evictions (validity-map
                                          ///< minimized writeback)
  std::uint64_t spill_bytes_dropped_clean = 0;  ///< valid-but-clean bytes
                                                ///< evictions dropped without
                                                ///< any copy
  std::uint64_t refetches = 0;  ///< spilled incarnations re-admitted on
                                ///< demand at dispatch (read ranges
                                ///< re-uploaded from the home copy)
};

/// Per-tenant slice of the runtime counters (service mode). Counted at
/// exactly the same sites as the matching RuntimeStats fields whenever
/// the enqueuing stream carries a tenant binding, so for a run where
/// every stream is bound, sum-of-slices == the global totals.
struct TenantStatsSlice {
  std::uint64_t computes_enqueued = 0;
  std::uint64_t transfers_enqueued = 0;
  std::uint64_t syncs_enqueued = 0;
  std::uint64_t actions_completed = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t transfers_elided = 0;
  std::uint64_t bytes_elided = 0;
  std::uint64_t placements_steered = 0;  ///< counted by the service layer
                                         ///< (stream placement decisions)
};

/// Byte-range coherence knobs: validity tracking, online transfer
/// elision, and the chunked multi-hop transfer pipeline.
struct CoherenceConfig {
  /// Maintain per-incarnation validity interval maps (Buffer). The
  /// substrate for elision and derived dirty ranges; cheap, on by
  /// default. Env: HS_COHERENCE_OFF=1 disables tracking AND elision.
  bool track = true;
  /// Complete transfers whose destination range is already byte-identical
  /// to the source as zero-cost no-ops. Env: HS_NO_ELIDE=1 disables.
  bool elide = true;
  /// Debug oracle: memcmp source vs destination on every elision (when
  /// the executor executes payloads) and throw Errc::internal on any
  /// mismatch. Env: HS_COHERENCE_ORACLE=1.
  bool oracle = false;
  /// Device->device transfers longer than this are split into chunks so
  /// the device->host and host->device hops overlap.
  std::size_t pipeline_threshold = 8u << 20;
  /// Chunk size for the pipelined hops.
  std::size_t pipeline_chunk = 2u << 20;
};

/// Construction-time configuration.
struct RuntimeConfig {
  PlatformDesc platform = PlatformDesc::host_only();
  OrderPolicy policy = OrderPolicy::relaxed_fifo;
  bool transfer_pool_enabled = true;  ///< COI-like 2 MB staging pool
  LinkModel device_link = pcie_gen2_x16();
  /// Per-device link override (one entry per non-host domain); empty =
  /// every device uses `device_link`. Lets a platform mix PCIe cards and
  /// fabric-attached remote nodes (§IV: streams "on devices residing in
  /// remote nodes").
  std::vector<LinkModel> domain_links;
  /// Interconnect fault model: which transfers fail, stall, or take the
  /// device down (interconnect/fault.hpp). Disabled by default.
  FaultPlan faults;
  /// How executors retry transient transfer failures before declaring
  /// the device lost.
  RetryPolicy retry;
  /// Link-health EWMA tuning for fault-aware placement
  /// (interconnect/health.hpp).
  HealthPolicy health;
  /// Use the pre-index pairwise window scan for dependence analysis
  /// instead of the per-buffer interval index (DESIGN.md "Scalable
  /// admission path"). Kept as the reference implementation and the
  /// honest baseline for bench_enqueue_scale. Env: HS_DEP_LEGACY=1.
  bool dep_legacy_scan = false;
  /// Debug oracle: run the index *and* the legacy scan on every relaxed
  /// admission and throw Errc::internal if the blocker sets differ.
  /// Env: HS_DEP_ORACLE=1.
  bool dep_oracle = false;
  /// Byte-range coherence: validity tracking, transfer elision, chunked
  /// multi-hop pipeline (see CoherenceConfig).
  CoherenceConfig coherence;
  /// Out-of-core execution: when an instantiation would exceed a domain's
  /// memory budget, evict idle (unpinned) incarnations — dirty ranges sync
  /// home, clean ranges drop free — instead of throwing
  /// Errc::resource_exhausted. Spilled operands are transparently
  /// re-admitted and re-uploaded at dispatch. Env: HS_NO_EVICT=1 restores
  /// the old throw-on-exhaustion behavior.
  bool eviction = true;
};

/// Where enqueues go during graph capture: instead of being admitted into
/// a stream window and executed, fully-formed records on captured streams
/// are handed to the sink, which stores them as graph nodes and returns a
/// placeholder completion event (graph/capture.hpp implements this).
class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  /// Whether enqueues into `stream` are being captured.
  [[nodiscard]] virtual bool captures(StreamId stream) const = 0;
  /// Records one enqueue. The returned event never fires; it exists so
  /// capture-time code can thread it into enqueue_event_wait calls, which
  /// the sink resolves into graph edges.
  virtual std::shared_ptr<EventState> record(
      std::shared_ptr<ActionRecord> record) = 0;
};

/// Admission gating for service mode. When installed, every enqueue that
/// lands in a tenant-bound stream calls before_admit *before* the action
/// enters its stream window — outside all stream/shard locks, so an
/// implementation may block (weighted-fair turn taking, blocking quotas)
/// or throw (Errc::quota_exceeded in fail-fast mode). Each admitted
/// gated action owes exactly one on_complete at completion — including
/// cancellation, failure, and elision — so permits and in-flight byte
/// accounting never leak. on_complete runs on completion paths
/// (executor threads, the completion drainer) and must not block or
/// throw.
class AdmissionHook {
 public:
  virtual ~AdmissionHook() = default;
  virtual void before_admit(std::uint32_t tenant, ActionType type,
                            std::size_t bytes) = 0;
  /// Called once the admission itself finished (the record is in its
  /// stream window) — the release point for a fair-turn permit acquired
  /// in before_admit. Runs outside all runtime locks; must not block.
  virtual void after_admit(std::uint32_t tenant, ActionType type) noexcept = 0;
  virtual void on_complete(std::uint32_t tenant, ActionType type,
                           std::size_t bytes) noexcept = 0;
  /// The memory governor spilled `buffer`'s incarnation in `domain` (its
  /// dirty ranges are already home). Runs under the governor lock on
  /// whatever thread triggered the eviction; must not block, throw, or
  /// call back into the runtime.
  virtual void on_evict(BufferId buffer, DomainId domain,
                        std::size_t bytes) noexcept {
    (void)buffer;
    (void)domain;
    (void)bytes;
  }
  /// A spilled (or dispatch-time) incarnation of `buffer` is being
  /// re-admitted into `domain`. May throw (e.g. Errc::quota_exceeded) to
  /// veto the re-admission, which fails the triggering action; must not
  /// block on runtime progress (it runs on dispatch paths).
  virtual void on_refetch(BufferId buffer, DomainId domain,
                          std::size_t bytes) {
    (void)buffer;
    (void)domain;
    (void)bytes;
  }
};

/// One entry of a pre-linked (captured-graph) launch batch: a fresh record
/// plus the indices of earlier batch entries it depends on. See
/// Runtime::admit_prelinked.
struct PrelinkedAction {
  std::shared_ptr<ActionRecord> record;
  /// Indices into the batch of earlier same-stream actions whose operands
  /// conflict with this one — the dependence analysis result, computed
  /// once at capture and reused every replay.
  std::span<const std::uint32_t> preds;
};

class Runtime {
 public:
  Runtime(RuntimeConfig config, std::unique_ptr<Executor> executor);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] const RuntimeConfig& config() const noexcept {
    return config_;
  }

  // --- Domains -----------------------------------------------------------
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] const Domain& domain(DomainId id) const;
  /// False once the domain was declared lost.
  [[nodiscard]] bool domain_alive(DomainId id) const;
  /// Declares `id` permanently lost (an unplugged/faulted card). Every
  /// in-flight action on its streams is failed exactly-once, one
  /// device_lost error is queued for the next synchronization point, and
  /// all further work targeting the domain is refused with
  /// Errc::device_lost. Idempotent. Executors call this on injected
  /// device loss and on transfer-retry exhaustion; applications may call
  /// it to take a device out of rotation.
  void mark_domain_lost(DomainId id);
  /// Moves a buffer off the (typically lost) domain `from`: the
  /// incarnation in `to` is created if absent, refreshed from the host
  /// incarnation, and the `from` incarnation is dropped with its budget
  /// refunded. The host copy is only authoritative over ranges the
  /// device never wrote: if `from` is still alive and holds dirty ranges
  /// (device computes wrote them and nothing synced them back), those
  /// ranges are copied device->host first, so evacuation never
  /// resurrects stale host data. If `from` is dead and dirty, the only
  /// current copy died with it: the call fails with Errc::data_loss
  /// unless `discard_dirty` is set (recovery paths that restore from
  /// their own checkpoint, or will re-execute the producers, pass true).
  /// The buffer must be quiescent — synchronize first. Returns
  /// device_lost if `to` is dead, resource_exhausted if `to` lacks
  /// memory, not_found for unknown ids.
  Status evacuate(BufferId id, DomainId from, DomainId to,
                  bool discard_dirty = false);
  /// All domains of a given kind, in id order (domain discovery, §II).
  [[nodiscard]] std::vector<DomainId> domains_of_kind(DomainKind kind) const;
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  // --- Link health (fault-aware placement) -------------------------------
  /// Health state of the link to `domain`: an EWMA over transfer-attempt
  /// outcomes fed from the fault injector's decisions and retry notes.
  [[nodiscard]] LinkHealth link_health(DomainId id) const;
  /// Hysteresis verdict: true once the link's score fell below
  /// HealthPolicy::degrade_below and until it recovers above
  /// recover_above (sticky at device loss).
  [[nodiscard]] bool link_degraded(DomainId id) const;
  /// Placement helper: the first candidate that is alive and not
  /// degraded; falls back to the first alive candidate when every
  /// survivor is degraded (degraded beats dead), and throws
  /// Errc::device_lost when no candidate is alive. Counts a steered
  /// placement whenever the answer differs from the first candidate.
  [[nodiscard]] DomainId pick_healthy(std::span<const DomainId> candidates);

  // --- Buffers -----------------------------------------------------------
  /// Wraps user memory [base, base+size) as a buffer in the proxy space.
  BufferId buffer_create(void* base, std::size_t size, BufferProps props = {});
  /// Allocates the buffer's incarnation in `domain` (explicit, as in
  /// hStreams: "buffers currently need to be allocated before the data
  /// can be transferred"). Charges the buffer's size against the
  /// domain's budget for the buffer's memory kind; throws
  /// Errc::resource_exhausted when the kind is absent, or when it is full
  /// and eviction is disabled (or every resident incarnation is pinned).
  /// With eviction enabled (RuntimeConfig::eviction, the default), a full
  /// budget spills idle incarnations to make room instead of throwing.
  void buffer_instantiate(BufferId id, DomainId domain);
  /// Releases the incarnation in `domain` and refunds its budget. The
  /// buffer must have no in-flight actions (callers synchronize first).
  /// Fails with Errc::data_loss if the incarnation holds dirty ranges the
  /// host does not have (device-newer data) unless `discard_dirty` is set
  /// — mirror of evacuate's escape hatch; call sync_home first to keep
  /// the data. Deinstantiating a governor-spilled incarnation just clears
  /// its refetch eligibility.
  void buffer_deinstantiate(BufferId id, DomainId domain,
                            bool discard_dirty = false);
  void buffer_destroy(BufferId id);
  /// Remaining budget of `kind` memory in `domain` (domain discovery,
  /// §II: properties include "the amount of each kind of memory").
  [[nodiscard]] std::size_t memory_available(DomainId domain,
                                             MemKind kind) const;
  /// Proxy base and size of the buffer containing `proxy` (used by the
  /// compat layer, where heap arguments imply whole-buffer operands).
  [[nodiscard]] std::pair<void*, std::size_t> buffer_extent(
      const void* proxy);
  /// Destroys the buffer containing `proxy` (hStreams_DeAlloc style).
  void buffer_destroy_containing(const void* proxy);
  [[nodiscard]] std::size_t buffer_count() const;
  /// Proxy -> domain-local translation (used by TaskContext).
  [[nodiscard]] void* translate(const void* proxy, std::size_t len,
                                DomainId domain);
  /// Domain-local address of a buffer range (used by executors to move
  /// data between incarnations).
  [[nodiscard]] std::byte* buffer_local(BufferId id, DomainId domain,
                                        std::size_t offset, std::size_t len);
  /// The interconnect link between the host and `domain`.
  [[nodiscard]] const LinkModel& link_for(DomainId domain) const;
  /// Stages `bytes` through the COI-like transfer pool (statistics and
  /// modeled allocation cost; see BufferPool). Returns the modeled
  /// allocation seconds this staging incurred — zero in the pooled steady
  /// state, significant when the pool is disabled (§III).
  double account_transfer_staging(std::size_t bytes);

  // --- Streams -----------------------------------------------------------
  /// Creates a stream whose sink is (`domain`, `mask`). The mask selects
  /// logical hardware threads of the domain. Policy defaults to the
  /// runtime-wide policy.
  StreamId stream_create(DomainId domain, const CpuMask& mask,
                         std::optional<OrderPolicy> policy = std::nullopt);
  void stream_destroy(StreamId id);  ///< stream must be idle
  /// Drains a wedged stream's window: every action that has not started
  /// executing — undispatched actions plus dispatched event waits parked
  /// on unfired events — is completed as `cancelled` (its completion
  /// event still fires, so cross-stream waiters unblock). Actions whose
  /// effects are already in flight are left to finish. Returns the number
  /// of actions cancelled.
  std::size_t stream_cancel(StreamId id);
  [[nodiscard]] std::size_t stream_count() const;
  [[nodiscard]] DomainId stream_domain(StreamId id) const;
  [[nodiscard]] CpuMask stream_mask(StreamId id) const;
  [[nodiscard]] OrderPolicy stream_policy(StreamId id) const;
  /// Size in bytes of a registered buffer (graph capture/rebinding use).
  [[nodiscard]] std::size_t buffer_size(BufferId id) const;

  // --- Actions -----------------------------------------------------------
  /// Enqueues a compute task. Operands declare the proxy ranges the task
  /// reads/writes; they are the dependence analysis input.
  std::shared_ptr<EventState> enqueue_compute(
      StreamId stream, ComputePayload payload,
      std::span<const OperandRef> operands);

  /// Enqueues a transfer of [proxy, proxy+len) between the host
  /// incarnation and the stream's sink incarnation of the containing
  /// buffer. Host-as-target streams alias the transfer away.
  std::shared_ptr<EventState> enqueue_transfer(StreamId stream,
                                               const void* proxy,
                                               std::size_t len, XferDir dir);

  /// Enqueues a device->device transfer: [proxy, proxy+len) moves from
  /// `peer`'s incarnation into the stream's sink incarnation, staged
  /// through the host (the star topology has no direct device links).
  /// Executors pipeline the two hops in chunks above
  /// CoherenceConfig::pipeline_threshold, so large moves approach 2x the
  /// serial two-hop time. The host incarnation is refreshed as a side
  /// effect of the staging. `peer == kHostDomain` degenerates to a plain
  /// host->sink transfer.
  std::shared_ptr<EventState> enqueue_transfer_from(StreamId stream,
                                                    const void* proxy,
                                                    std::size_t len,
                                                    DomainId peer);

  /// Declares that host code wrote [proxy, proxy+len) directly (outside
  /// any enqueued action): device incarnations of the range are
  /// invalidated so later uploads are not elided against stale validity.
  /// Host writes that precede any device upload of the range need no
  /// declaration; writes *between* transfers of the same range do.
  void note_host_write(const void* proxy, std::size_t len);

  /// Enqueues an asynchronous sink-side allocation of `buffer`'s
  /// incarnation in the stream's domain (the §VII "forthcoming" feature:
  /// allocation pipelines behind other work instead of blocking the
  /// host). The buffer's budget is charged immediately; the modeled
  /// allocation time is paid in-stream. Later actions touching the
  /// buffer order after it via its whole-range operand.
  std::shared_ptr<EventState> enqueue_alloc(StreamId stream, BufferId buffer);

  /// Enqueues a wait on `event`. With operands, only later actions whose
  /// operands conflict are held back; with no operands the wait is a
  /// stream-wide barrier.
  std::shared_ptr<EventState> enqueue_event_wait(
      StreamId stream, std::shared_ptr<EventState> event,
      std::span<const OperandRef> operands = {});

  /// Enqueues a signal: the returned event fires once all earlier
  /// conflicting actions complete (all earlier actions if no operands).
  std::shared_ptr<EventState> enqueue_signal(
      StreamId stream, std::span<const OperandRef> operands = {});

  // --- Task-graph capture & replay (graph/) ---------------------------------
  /// Attaches/detaches the capture sink. While a sink is attached,
  /// enqueues into streams it claims are recorded as graph nodes instead
  /// of executing (and are not counted in the enqueue statistics).
  /// Exactly one capture may be active at a time.
  void set_capture(CaptureSink* sink);

  /// Admits one captured-graph launch as a single batch: one lock
  /// acquisition for the whole graph, and per-action dependence wiring
  /// that reuses the captured edges (`PrelinkedAction::preds`) instead of
  /// re-running the pairwise operand-conflict analysis. Actions are only
  /// scanned against the *residue* of earlier work still incomplete in
  /// their stream's window, so back-to-back replays pipeline with the
  /// same semantics eager enqueue would have. Entries must be ordered so
  /// every pred index refers to an earlier entry. `graph_id` tags the
  /// admitted actions (and their trace records).
  void admit_prelinked(std::span<const PrelinkedAction> batch,
                       std::uint32_t graph_id);

  /// Counts one finished capture and hands out the graph's id (ids start
  /// at 1; 0 marks eager actions).
  [[nodiscard]] std::uint32_t note_graph_captured();

  /// Counts transfer nodes eliminated by graph passes (coalesced into a
  /// neighbour or dropped as provably redundant).
  void note_transfers_coalesced(std::uint64_t count);

  // --- Synchronization (host side) ----------------------------------------
  void stream_synchronize(StreamId stream);
  void synchronize();  ///< all streams idle
  void event_wait_host(std::span<const std::shared_ptr<EventState>> events,
                       WaitMode mode = WaitMode::all);

  /// Deadline overloads: instead of blocking forever on a wedged stream,
  /// return Status{timed_out} after `timeout_s` seconds (wall seconds on
  /// the threaded backend, virtual seconds in simulation). On a drained
  /// wait, the oldest captured sink error (if any) is consumed and
  /// returned as a Status rather than rethrown.
  [[nodiscard]] Status synchronize(double timeout_s);
  [[nodiscard]] Status stream_synchronize(StreamId stream, double timeout_s);
  [[nodiscard]] Status event_wait_host(
      std::span<const std::shared_ptr<EventState>> events, WaitMode mode,
      double timeout_s);

  // --- Checkpoint support (checkpoint/) ------------------------------------
  /// Pulls every dirty range of `id` (device incarnations newer than the
  /// host) home through the evacuate sync-home path, without dropping any
  /// incarnation: after it returns ok, the host copy is the buffer's
  /// logical value over its whole extent. Quiesces the executor first;
  /// callers synchronize before asking (the checkpoint layer does).
  /// Errc::data_loss when a *dead* domain holds dirty ranges — the only
  /// current copy died with it; not_found for unknown ids.
  Status sync_home(BufferId id);
  /// Drains the buffer's changed-since-last-epoch ranges (see
  /// Buffer::take_ckpt_dirty). The epoch boundary: a subsequent call
  /// returns only changes made after this one.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  take_ckpt_dirty(BufferId id);
  /// Marks [offset, offset+len) changed-since-last-epoch (whole-buffer
  /// seeding when tracking begins; forced full snapshots when coherence
  /// tracking is off).
  void mark_ckpt_dirty(BufferId id, std::size_t offset, std::size_t len);
  /// Rebinds the tracked buffers of `manager` to this runtime's
  /// registered buffers, replays the last durable epoch's bytes into the
  /// host incarnations (declared via note_host_write, so device validity
  /// is invalidated and later uploads are not elided against stale
  /// state), and reports where execution should resume. Defined in
  /// checkpoint/checkpoint.cpp.
  Status restore_from_checkpoint(ckpt::CheckpointManager& manager,
                                 ckpt::RestoreInfo* info = nullptr);
  /// Counts one committed epoch: `bytes_written` chunk payload bytes
  /// persisted, `bytes_skipped` proven clean and skipped.
  void note_checkpoint(std::uint64_t bytes_written, std::uint64_t bytes_skipped);
  /// Counts one completed restore.
  void note_restore();

  // --- Multi-tenant service mode (service/) --------------------------------
  /// Registers a tenant counter slice and returns its id (ids start at
  /// 1; 0 marks untagged work). Slices live for the runtime's lifetime.
  [[nodiscard]] std::uint32_t tenant_register();
  /// Number of registered tenants.
  [[nodiscard]] std::size_t tenant_count() const;
  /// Snapshot of one tenant's counter slice.
  [[nodiscard]] TenantStatsSlice tenant_slice(std::uint32_t tenant) const;
  /// Counts a service-layer placement decision into `tenant`'s slice.
  void note_tenant_placement(std::uint32_t tenant);
  /// Binds `stream` to (`tenant`, `session`): subsequent enqueues are
  /// stamped with the ids, counted into the tenant's slice, and gated by
  /// the admission hook. Bind before enqueuing (the binding is read
  /// without the stream lock on enqueue fast paths); tenant 0 unbinds.
  void stream_bind_tenant(StreamId stream, std::uint32_t tenant,
                          std::uint32_t session);
  /// The tenant a stream is bound to (0 = unbound).
  [[nodiscard]] std::uint32_t stream_tenant(StreamId stream) const;
  /// Installs the admission gate (nullptr detaches). The caller keeps
  /// ownership; the hook must outlive all runtime activity. Install
  /// before the first gated enqueue and detach only when idle.
  void set_admission_hook(AdmissionHook* hook) noexcept {
    admission_hook_.store(hook, std::memory_order_release);
  }

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] RuntimeStats stats() const;
  [[nodiscard]] double now() const { return executor_->now(); }
  /// Attaches an execution-trace recorder (nullptr detaches). The caller
  /// keeps ownership; the recorder must outlive all runtime activity.
  void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }
  [[nodiscard]] OrderPolicy policy() const noexcept { return config_.policy; }
  [[nodiscard]] Executor& executor() noexcept { return *executor_; }
  [[nodiscard]] BufferPool& transfer_pool() noexcept { return pool_; }

  // --- Error containment ----------------------------------------------------
  /// A sink-side task body that throws does not crash the worker: the
  /// exception is captured, the action completes (its successors still
  /// run — matching an offload runtime, where a failed kernel cannot
  /// retract already-enqueued work), and captured errors are rethrown
  /// one per synchronize()/stream_synchronize() call, oldest first, from
  /// a bounded pending-error queue (so a second error captured between
  /// two sync calls is not lost). Returns whether an unreported sink
  /// error is pending.
  [[nodiscard]] bool has_pending_error() const;
  /// Drops all queued sink errors (recovery paths that already know the
  /// domain died). Returns how many were dropped.
  std::size_t clear_pending_errors();

  // --- Executor interface (not for application use) ------------------------
  /// Called by executors when an action's effects are complete. Ignored
  /// if the action was already completed by cancellation or domain loss.
  void complete_action(ActionId id);
  /// Called by executors when a task body threw; captures the error for
  /// the next synchronization point and completes the action.
  void fail_action(ActionId id, std::exception_ptr error);
  /// Decides the fate of attempt `attempt` of the transfer with stable
  /// per-domain id `transfer` targeting `domain` (consults the
  /// FaultInjector, counts injected faults, feeds the link-health EWMA).
  /// Executors pass ActionRecord::transfer_seq as the id.
  [[nodiscard]] FaultDecision next_transfer_fault(DomainId domain,
                                                  std::uint64_t transfer,
                                                  int attempt);
  /// Counts one backoff retry of a transient transfer failure on the
  /// link to `domain`.
  void note_transfer_retry(DomainId domain);
  /// Counts `count` chunks of a pipelined multi-hop transfer submitted
  /// by an executor.
  void note_transfer_chunks(std::uint64_t count);
  /// Records one pipelined transfer's modeled serial two-hop duration
  /// vs. its observed duration (both in seconds; accumulated as micros —
  /// the pipeline overlap ratio is serial/actual at report time).
  void note_pipeline_span(double serial_s, double actual_s);
  /// Resolved coherence settings (config ∪ env overrides).
  [[nodiscard]] bool coherence_tracking() const noexcept {
    return coherence_track_;
  }
  [[nodiscard]] bool coherence_eliding() const noexcept {
    return coherence_elide_;
  }
  [[nodiscard]] bool coherence_oracle() const noexcept {
    return coherence_oracle_;
  }
  /// Counts one graph-based partial recovery that re-admitted
  /// `reexecuted` actions (graph/replay.cpp).
  void note_partial_recovery(std::uint64_t reexecuted);
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return config_.retry;
  }
  [[nodiscard]] FaultInjector& fault_injector() noexcept { return injector_; }
  /// Host-wait rendezvous lock + condition variable, used by
  /// Executor::wait implementations. Since the sharded-locking refactor
  /// this mutex no longer guards stream/dependence state — wait
  /// predicates are self-synchronizing — it only pairs with the
  /// condition variable so completion notifications are not lost.
  [[nodiscard]] std::mutex& mutex() noexcept { return mutex_; }
  [[nodiscard]] std::condition_variable& completion_cv() noexcept {
    return cv_;
  }

 private:
  /// An incomplete stream-wide barrier (event wait/signal with no
  /// operands): it conflicts with every action, so it cannot live in the
  /// byte-range index and is tracked by seq alongside it.
  struct BarrierRef {
    ActionId action;
    std::uint64_t seq = 0;
  };

  /// Atomic mirror of TenantStatsSlice (same fields, same counting
  /// sites as AtomicStats): one per registered tenant, pointer-stable in
  /// tenant_slices_, bumped lock-free through StreamState::slice.
  struct TenantCounters {
    std::atomic<std::uint64_t> computes_enqueued{0};
    std::atomic<std::uint64_t> transfers_enqueued{0};
    std::atomic<std::uint64_t> syncs_enqueued{0};
    std::atomic<std::uint64_t> actions_completed{0};
    std::atomic<std::uint64_t> bytes_transferred{0};
    std::atomic<std::uint64_t> transfers_elided{0};
    std::atomic<std::uint64_t> bytes_elided{0};
    std::atomic<std::uint64_t> placements_steered{0};
  };

  /// Per-stream admission state. `mu` serializes admissions into and
  /// completions out of this one stream; enqueues on different streams
  /// do not contend. Lock order: below streams_mutex_, above the dep
  /// shards (see DESIGN.md "Locking protocol").
  struct StreamState {
    StreamId id;
    DomainId domain;
    CpuMask mask;
    OrderPolicy policy;
    mutable std::mutex mu;
    std::uint64_t next_seq = 0;
    /// Incomplete actions in FIFO order (pending or dispatched).
    std::deque<std::shared_ptr<ActionRecord>> window;
    /// Byte-range dependence index over the incomplete window (relaxed
    /// streams on the index path only).
    StreamDepIndex index;
    /// Incomplete full-barrier actions, in seq order.
    std::vector<BarrierRef> barriers;
    /// Admission scratch (candidate uses), reused across admissions to
    /// keep the index fast path allocation-free. Guarded by `mu` like
    /// the index itself.
    mutable std::vector<DepUse> scratch_uses;
    /// Atomic so stream lookups need only the shared streams_mutex_.
    std::atomic<bool> alive{true};
    /// Service-mode binding (stream_bind_tenant). Written while the
    /// stream is quiescent, read lock-free on enqueue paths; `slice`
    /// points into tenant_slices_ (pointer-stable deque) so hot paths
    /// bump per-tenant counters without any tenant-table lock.
    std::atomic<std::uint32_t> tenant{0};
    std::atomic<std::uint32_t> session{0};
    std::atomic<TenantCounters*> slice{nullptr};
  };

  // Dependence bookkeeping attached per action, keyed by id. The owning
  // shard's lock guards only the map's insert/find/erase; the fields are
  // mutated under the action's stream lock (values are pointer-stable
  // across rehash, and erasure happens only under that same stream lock).
  struct DepState {
    std::shared_ptr<ActionRecord> record;
    std::size_t blockers = 0;
    std::vector<ActionId> successors;
    StreamState* stream = nullptr;
  };

  /// One stripe of the action table. Striping by id keeps completions of
  /// unrelated actions off each other's locks.
  struct DepShard {
    std::mutex mu;
    std::unordered_map<ActionId, DepState> map;
  };
  static constexpr std::size_t kDepShards = 16;

  /// Self-locking lookups (shared streams_mutex_ inside); the returned
  /// reference stays valid for the runtime's lifetime (entries are
  /// pointer-stable and never erased).
  [[nodiscard]] StreamState& stream_state(StreamId id);
  [[nodiscard]] const StreamState& stream_state(StreamId id) const;
  /// Variants for callers already holding streams_mutex_ (shared_mutex
  /// acquisition is not recursive).
  [[nodiscard]] StreamState& stream_state_unlocked(StreamId id);
  [[nodiscard]] const StreamState& stream_state_unlocked(StreamId id) const;

  /// Locks `m`, counting a contended acquisition (try_lock miss) into
  /// lock_shard_contention.
  void lock_counted(std::mutex& m) const;

  [[nodiscard]] DepShard& shard_for(ActionId id) {
    return shards_[id.value % kDepShards];
  }
  /// Shard lookup; returns nullptr if absent. The returned pointer stays
  /// valid while the caller holds the action's stream lock (which blocks
  /// the only erasure path).
  [[nodiscard]] DepState* dep_find(ActionId id);

  /// Inserts a fully-formed record into its stream window, wires
  /// dependence edges, and dispatches it if already ready. Takes the
  /// stream's lock.
  std::shared_ptr<EventState> admit(StreamState& stream,
                                    std::shared_ptr<ActionRecord> record);

  /// Computes this record's blockers among earlier incomplete window
  /// entries by the legacy pairwise scan (stream lock held). `limit`
  /// bounds the scan to the first `limit` window entries (the pre-batch
  /// residue for prelinked admission; the full window otherwise).
  [[nodiscard]] std::vector<ActionId> legacy_blockers(
      const StreamState& stream, const ActionRecord& record,
      std::size_t limit) const;

  /// Computes blockers via the per-buffer interval index + live-barrier
  /// list (stream lock held), deduped and in admission (seq) order. Only
  /// uses with seq < `seq_limit` participate (UINT64_MAX = all; the
  /// residue filter for prelinked admission). Cross-checks against
  /// legacy_blockers when the oracle is on.
  [[nodiscard]] std::vector<ActionId> indexed_blockers(
      const StreamState& stream, const ActionRecord& record,
      std::uint64_t seq_limit, std::size_t window_limit) const;

  /// Service-mode pre-admission: stamps the stream's tenant/session
  /// binding onto `record` and, when an admission hook is installed,
  /// runs before_admit (which may block for a fair-turn or throw
  /// quota_exceeded). Called on every enqueue front-end *before* any
  /// stream/shard lock is taken, so a blocked tenant holds nothing
  /// another tenant's enqueue or completion needs. `bytes` is the
  /// transfer length (0 for computes/syncs).
  void tag_and_gate(const StreamState& stream, ActionRecord& record,
                    std::size_t bytes);

  /// The per-tenant counter slice for `stream`'s binding (nullptr when
  /// unbound). Lock-free.
  [[nodiscard]] TenantCounters* slice_of(const StreamState& stream) const {
    return stream.slice.load(std::memory_order_acquire);
  }

  /// Hands a ready action to the executor (no lock held).
  void dispatch(const std::shared_ptr<ActionRecord>& record);

  /// Online transfer elision, decided at dispatch time (every conflicting
  /// predecessor has completed, so the validity state of the range is
  /// settled). Returns true — after marking the record elided and
  /// counting stats — when source and destination incarnations are both
  /// valid over the transferred range (plus the host for device->device
  /// moves), i.e. the copy would move byte-identical data. Under the
  /// coherence oracle the claim is verified with memcmp first.
  [[nodiscard]] bool try_elide(const std::shared_ptr<ActionRecord>& record);

  /// Entry for an action whose completion is already claimed: pushes it
  /// onto the MPSC completion queue; the first pusher becomes the
  /// drainer and applies queued completions in FIFO order (single
  /// unblocking pass — deterministic, and recursion through completion
  /// callbacks stays bounded).
  void finish_action(std::shared_ptr<ActionRecord> record);

  /// Applies one completion: index/window maintenance, successor
  /// unblocking, completion-event fire, waiter notification.
  void process_completion(const std::shared_ptr<ActionRecord>& record);

  /// Queues a captured sink error (mutex_ held). The queue is bounded;
  /// overflow drops the newest error after logging it.
  void push_pending_error(std::exception_ptr error);

  /// Pops and converts the oldest pending error, ok() if none (no lock
  /// held on entry).
  [[nodiscard]] Status take_pending_status();

  /// Throws Errc::device_lost unless the domain is alive (lock-free).
  void require_domain_alive(DomainId id) const;

  /// Folds one transfer-attempt outcome into `domain`'s health EWMA
  /// (mutex_ held); counts degradation transitions.
  void health_sample(DomainId id, double outcome);

  /// True when every stream's window is empty (self-locking).
  [[nodiscard]] bool all_streams_idle() const;
  /// True when `stream`'s window is empty (self-locking).
  [[nodiscard]] bool stream_idle(StreamId stream) const;

  /// Wakes host waiters after a state change, with the mutex_ fence that
  /// prevents lost wakeups (waiters re-check predicates under mutex_).
  void notify_waiters();

  // --- Out-of-core memory governor (DESIGN.md "Out-of-core eviction") ---
  /// Admits (id, domain) into the budget for `kind`, evicting idle
  /// incarnations while the budget is exceeded (gov_mu_ held). No-op if
  /// already resident (touches LRU recency; pins when `pins` > 0). A
  /// non-null `stall_s` accumulates the modeled seconds of victim
  /// writeback so simulated executors can charge it to the triggering
  /// action. A non-null `defer_pins` (the calling action's own pins)
  /// switches the every-victim-pinned failure mode from throwing to a
  /// DeferDispatch signal — but only when some pin in the way belongs to
  /// *another* in-flight action, whose completion will free capacity;
  /// an action whose own operand set can never fit still throws.
  void govern_admit_locked(
      BufferId id, DomainId domain, MemKind kind, std::size_t bytes,
      std::uint32_t pins, double* stall_s,
      const std::vector<std::pair<BufferId, DomainId>>* defer_pins = nullptr);
  /// Spills one idle incarnation of (domain, kind): dirty ranges sync
  /// home (validity-map minimized), clean ranges drop free, the Buffer is
  /// deinstantiated and marked spilled for demand re-fetch. Throws
  /// Errc::resource_exhausted when every resident incarnation is pinned.
  /// Returns the modeled writeback seconds (gov_mu_ held).
  double evict_one_locked(DomainId domain, MemKind kind);
  /// Drops (id, domain) from the governor ledger, refunding its budget
  /// charge (gov_mu_ held; no-op if absent).
  void govern_release_locked(BufferId id, DomainId domain);
  /// Pins every incarnation `record` touches (sink-domain operands,
  /// transfer sink + d2d peer) so in-flight actions' operands are never
  /// eviction victims, re-admitting and re-uploading spilled read ranges
  /// on demand. Called from dispatch, before try_elide, outside all
  /// locks; pins are recorded in record->pins and released exactly once
  /// in process_completion. Throws to fail the action (budget cannot fit
  /// all pinned operands, or the admission hook vetoed a refetch).
  void prepare_residency(const std::shared_ptr<ActionRecord>& record);
  /// Releases the pins recorded in `record->pins` (outside all locks).
  /// Returns true when pins were actually released — capacity that a
  /// deferred dispatch may now be able to claim.
  bool release_pins(const std::shared_ptr<ActionRecord>& record);
  /// Re-dispatches actions parked by out-of-core backpressure (their
  /// operands could not be admitted because other in-flight actions
  /// pinned every victim). Called outside all locks whenever pins drop
  /// or budget capacity frees (completion, deinstantiate, destroy).
  void retry_deferred();

  /// Mirrors RuntimeStats as relaxed atomics so hot paths never take a
  /// lock to count. stats() snapshots it.
  struct AtomicStats {
    std::atomic<std::uint64_t> computes_enqueued{0};
    std::atomic<std::uint64_t> transfers_enqueued{0};
    std::atomic<std::uint64_t> syncs_enqueued{0};
    std::atomic<std::uint64_t> actions_completed{0};
    std::atomic<std::uint64_t> actions_failed{0};
    std::atomic<std::uint64_t> transfers_aliased_away{0};
    std::atomic<std::uint64_t> bytes_transferred{0};
    std::atomic<std::uint64_t> ooo_dispatches{0};
    std::atomic<std::uint64_t> faults_injected{0};
    std::atomic<std::uint64_t> transfers_retried{0};
    std::atomic<std::uint64_t> actions_cancelled{0};
    std::atomic<std::uint64_t> domains_lost{0};
    std::atomic<std::uint64_t> graphs_captured{0};
    std::atomic<std::uint64_t> graph_replays{0};
    std::atomic<std::uint64_t> deps_reused{0};
    std::atomic<std::uint64_t> transfers_coalesced{0};
    std::atomic<std::uint64_t> links_degraded{0};
    std::atomic<std::uint64_t> placements_steered{0};
    std::atomic<std::uint64_t> partial_recoveries{0};
    std::atomic<std::uint64_t> actions_reexecuted{0};
    std::atomic<std::uint64_t> dep_index_hits{0};
    std::atomic<std::uint64_t> dep_scan_steps{0};
    std::atomic<std::uint64_t> lock_shard_contention{0};
    std::atomic<std::uint64_t> dep_oracle_checks{0};
    std::atomic<std::uint64_t> transfers_elided{0};
    std::atomic<std::uint64_t> bytes_elided{0};
    std::atomic<std::uint64_t> transfer_chunks{0};
    std::atomic<std::uint64_t> pipeline_serial_us{0};
    std::atomic<std::uint64_t> pipeline_actual_us{0};
    std::atomic<std::uint64_t> coherence_oracle_checks{0};
    std::atomic<std::uint64_t> checkpoints_taken{0};
    std::atomic<std::uint64_t> checkpoint_bytes_written{0};
    std::atomic<std::uint64_t> checkpoint_bytes_skipped_clean{0};
    std::atomic<std::uint64_t> restores_performed{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> spill_bytes_written{0};
    std::atomic<std::uint64_t> spill_bytes_dropped_clean{0};
    std::atomic<std::uint64_t> refetches{0};
  };

  RuntimeConfig config_;
  std::unique_ptr<Executor> executor_;
  Topology topology_;
  BufferPool pool_;

  /// Host-wait rendezvous only (see mutex()); also guards the cold state
  /// below that is not worth its own lock: health_, pending_errors_,
  /// injector decisions, and domain-loss transitions.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Guards the BufferPool's accounting (executor threads stage
  /// transfers concurrently).
  std::mutex pool_mutex_;

  /// Deque, not vector: Domain holds an atomic and never relocates.
  std::deque<Domain> domains_;
  /// Per-domain link health, indexed by domain id (host entry unused).
  std::vector<LinkHealth> health_;
  /// Per-domain enqueue-order transfer ids (the FaultInjector identity
  /// key), indexed by domain id. Sized once at construction.
  std::vector<std::atomic<std::uint64_t>> next_transfer_seq_;

  /// Guards the streams_ vector itself (create/destroy take it
  /// exclusively; lookups shared). Entries are pointer-stable.
  mutable std::shared_mutex streams_mutex_;
  std::vector<std::unique_ptr<StreamState>> streams_;

  /// Guards the BufferTable's structure (create/destroy exclusive,
  /// lookups shared); each Buffer's own state has a leaf lock.
  mutable std::shared_mutex buffers_mutex_;
  BufferTable buffers_;
  /// Serializes budget admission and eviction. Sits ABOVE buffers_mutex_
  /// in the lock order (gov_mu_ -> buffers_mutex_ shared -> Buffer::mu_):
  /// eviction writes dirty ranges home and deinstantiates victims while
  /// holding it, so residency decisions are atomic with the spill.
  /// Never taken while holding a stream, shard, or buffer lock.
  mutable std::mutex gov_mu_;
  /// Per-(domain, kind) budget ledger + resident-incarnation LRU/pin
  /// bookkeeping (gov_mu_).
  MemoryGovernor governor_;
  bool evict_enabled_ = true;  ///< resolved config.eviction minus HS_NO_EVICT
  /// Actions parked by out-of-core backpressure: their dispatch-time
  /// admission found every victim pinned by *other* in-flight actions.
  /// retry_deferred() re-dispatches them when pins or capacity free
  /// (gov_mu_ guards the list; dispatch happens outside it).
  std::vector<std::shared_ptr<ActionRecord>> ooc_deferred_;

  /// The striped action table (formerly one `deps_` map).
  std::array<DepShard, kDepShards> shards_;

  /// MPSC completion queue: producers are executor threads and
  /// cancellation paths; the first pusher drains (completion_draining_).
  std::mutex completion_mutex_;
  std::deque<std::shared_ptr<ActionRecord>> completion_queue_;
  bool completion_draining_ = false;

  /// One global atomic keeps ActionIds in enqueue order (ids assigned
  /// under the stream lock stay monotone within each stream's window).
  std::atomic<std::uint32_t> next_action_id_{0};
  std::atomic<std::uint32_t> next_graph_id_{1};  ///< 0 marks eager actions
  std::atomic<CaptureSink*> capture_{nullptr};
  /// Tenant counter slices, indexed by tenant id - 1. Deque: entries are
  /// pointer-stable, so StreamState::slice and hot paths never take
  /// tenants_mutex_ (which guards only registration and snapshots).
  std::deque<TenantCounters> tenant_slices_;
  mutable std::shared_mutex tenants_mutex_;
  std::atomic<AdmissionHook*> admission_hook_{nullptr};
  /// Mutable: const introspection paths still count scan steps.
  mutable AtomicStats stats_;
  bool dep_legacy_ = false;  ///< resolved config ∪ HS_DEP_LEGACY
  bool dep_oracle_ = false;  ///< resolved config ∪ HS_DEP_ORACLE
  bool coherence_track_ = true;   ///< resolved coherence.track minus env off
  bool coherence_elide_ = true;   ///< resolved coherence.elide minus env off
  bool coherence_oracle_ = false;  ///< resolved ∪ HS_COHERENCE_ORACLE
  /// Unreported sink errors, oldest first (bounded; see push_pending_error).
  std::deque<std::exception_ptr> pending_errors_;
  FaultInjector injector_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace hs
