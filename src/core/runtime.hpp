#pragma once

// The hetstream core runtime ("core API" layer).
//
// Owns the three hStreams abstractions — domains, streams, buffers — and
// the dependence semantics that connect them:
//
//   * Actions enqueued into a stream retain FIFO *semantics*: their
//     effects must be those of in-order execution.
//   * Under OrderPolicy::relaxed_fifo (the hStreams model), an action may
//     *execute* as soon as no earlier incomplete action in its stream has
//     a conflicting memory operand (RAW/WAR/WAW on buffer byte ranges).
//   * Under OrderPolicy::strict_fifo (the CUDA Streams model), an action
//     waits for all earlier actions in its stream.
//   * Across streams (and between streams and the host) there are no
//     implicit dependences; events are the only ordering mechanism.
//
// Execution itself — threads and time — is delegated to an Executor
// backend (threaded or simulated).

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/action.hpp"
#include "core/buffer.hpp"
#include "core/domain.hpp"
#include "core/executor.hpp"
#include "core/task_context.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "interconnect/buffer_pool.hpp"
#include "interconnect/topology.hpp"
#include "threading/cpu_mask.hpp"

namespace hs {

/// A memory operand reference in proxy address terms, as passed by users.
struct OperandRef {
  const void* ptr = nullptr;
  std::size_t len = 0;
  Access access = Access::in;
};

/// Counters exposed for the overhead bench and tests.
struct RuntimeStats {
  std::uint64_t computes_enqueued = 0;
  std::uint64_t transfers_enqueued = 0;
  std::uint64_t syncs_enqueued = 0;
  std::uint64_t actions_completed = 0;
  std::uint64_t actions_failed = 0;  ///< task bodies that threw
  std::uint64_t transfers_aliased_away = 0;  ///< host-as-target no-ops
  std::uint64_t bytes_transferred = 0;
  std::uint64_t ooo_dispatches = 0;  ///< actions dispatched past an earlier
                                     ///< incomplete action (relaxed only)
};

/// Construction-time configuration.
struct RuntimeConfig {
  PlatformDesc platform = PlatformDesc::host_only();
  OrderPolicy policy = OrderPolicy::relaxed_fifo;
  bool transfer_pool_enabled = true;  ///< COI-like 2 MB staging pool
  LinkModel device_link = pcie_gen2_x16();
  /// Per-device link override (one entry per non-host domain); empty =
  /// every device uses `device_link`. Lets a platform mix PCIe cards and
  /// fabric-attached remote nodes (§IV: streams "on devices residing in
  /// remote nodes").
  std::vector<LinkModel> domain_links;
};

class Runtime {
 public:
  Runtime(RuntimeConfig config, std::unique_ptr<Executor> executor);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Domains -----------------------------------------------------------
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] const Domain& domain(DomainId id) const;
  /// All domains of a given kind, in id order (domain discovery, §II).
  [[nodiscard]] std::vector<DomainId> domains_of_kind(DomainKind kind) const;
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  // --- Buffers -----------------------------------------------------------
  /// Wraps user memory [base, base+size) as a buffer in the proxy space.
  BufferId buffer_create(void* base, std::size_t size, BufferProps props = {});
  /// Allocates the buffer's incarnation in `domain` (explicit, as in
  /// hStreams: "buffers currently need to be allocated before the data
  /// can be transferred"). Charges the buffer's size against the
  /// domain's budget for the buffer's memory kind; throws
  /// Errc::resource_exhausted when the kind is absent or full.
  void buffer_instantiate(BufferId id, DomainId domain);
  /// Releases the incarnation in `domain` and refunds its budget. The
  /// buffer must have no in-flight actions (callers synchronize first).
  void buffer_deinstantiate(BufferId id, DomainId domain);
  void buffer_destroy(BufferId id);
  /// Remaining budget of `kind` memory in `domain` (domain discovery,
  /// §II: properties include "the amount of each kind of memory").
  [[nodiscard]] std::size_t memory_available(DomainId domain,
                                             MemKind kind) const;
  /// Proxy base and size of the buffer containing `proxy` (used by the
  /// compat layer, where heap arguments imply whole-buffer operands).
  [[nodiscard]] std::pair<void*, std::size_t> buffer_extent(
      const void* proxy);
  /// Destroys the buffer containing `proxy` (hStreams_DeAlloc style).
  void buffer_destroy_containing(const void* proxy);
  [[nodiscard]] std::size_t buffer_count() const;
  /// Proxy -> domain-local translation (used by TaskContext).
  [[nodiscard]] void* translate(const void* proxy, std::size_t len,
                                DomainId domain);
  /// Domain-local address of a buffer range (used by executors to move
  /// data between incarnations).
  [[nodiscard]] std::byte* buffer_local(BufferId id, DomainId domain,
                                        std::size_t offset, std::size_t len);
  /// The interconnect link between the host and `domain`.
  [[nodiscard]] const LinkModel& link_for(DomainId domain) const;
  /// Stages `bytes` through the COI-like transfer pool (statistics and
  /// modeled allocation cost; see BufferPool). Returns the modeled
  /// allocation seconds this staging incurred — zero in the pooled steady
  /// state, significant when the pool is disabled (§III).
  double account_transfer_staging(std::size_t bytes);

  // --- Streams -----------------------------------------------------------
  /// Creates a stream whose sink is (`domain`, `mask`). The mask selects
  /// logical hardware threads of the domain. Policy defaults to the
  /// runtime-wide policy.
  StreamId stream_create(DomainId domain, const CpuMask& mask,
                         std::optional<OrderPolicy> policy = std::nullopt);
  void stream_destroy(StreamId id);  ///< stream must be idle
  [[nodiscard]] std::size_t stream_count() const;
  [[nodiscard]] DomainId stream_domain(StreamId id) const;
  [[nodiscard]] CpuMask stream_mask(StreamId id) const;

  // --- Actions -----------------------------------------------------------
  /// Enqueues a compute task. Operands declare the proxy ranges the task
  /// reads/writes; they are the dependence analysis input.
  std::shared_ptr<EventState> enqueue_compute(
      StreamId stream, ComputePayload payload,
      std::span<const OperandRef> operands);

  /// Enqueues a transfer of [proxy, proxy+len) between the host
  /// incarnation and the stream's sink incarnation of the containing
  /// buffer. Host-as-target streams alias the transfer away.
  std::shared_ptr<EventState> enqueue_transfer(StreamId stream,
                                               const void* proxy,
                                               std::size_t len, XferDir dir);

  /// Enqueues an asynchronous sink-side allocation of `buffer`'s
  /// incarnation in the stream's domain (the §VII "forthcoming" feature:
  /// allocation pipelines behind other work instead of blocking the
  /// host). The buffer's budget is charged immediately; the modeled
  /// allocation time is paid in-stream. Later actions touching the
  /// buffer order after it via its whole-range operand.
  std::shared_ptr<EventState> enqueue_alloc(StreamId stream, BufferId buffer);

  /// Enqueues a wait on `event`. With operands, only later actions whose
  /// operands conflict are held back; with no operands the wait is a
  /// stream-wide barrier.
  std::shared_ptr<EventState> enqueue_event_wait(
      StreamId stream, std::shared_ptr<EventState> event,
      std::span<const OperandRef> operands = {});

  /// Enqueues a signal: the returned event fires once all earlier
  /// conflicting actions complete (all earlier actions if no operands).
  std::shared_ptr<EventState> enqueue_signal(
      StreamId stream, std::span<const OperandRef> operands = {});

  // --- Synchronization (host side) ----------------------------------------
  void stream_synchronize(StreamId stream);
  void synchronize();  ///< all streams idle
  void event_wait_host(std::span<const std::shared_ptr<EventState>> events,
                       WaitMode mode = WaitMode::all);

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] RuntimeStats stats() const;
  [[nodiscard]] double now() const { return executor_->now(); }
  /// Attaches an execution-trace recorder (nullptr detaches). The caller
  /// keeps ownership; the recorder must outlive all runtime activity.
  void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }
  [[nodiscard]] OrderPolicy policy() const noexcept { return config_.policy; }
  [[nodiscard]] Executor& executor() noexcept { return *executor_; }
  [[nodiscard]] BufferPool& transfer_pool() noexcept { return pool_; }

  // --- Error containment ----------------------------------------------------
  /// A sink-side task body that throws does not crash the worker: the
  /// exception is captured, the action completes (its successors still
  /// run — matching an offload runtime, where a failed kernel cannot
  /// retract already-enqueued work), and the first captured error is
  /// rethrown from the next synchronize()/stream_synchronize() call.
  /// Returns whether an unreported sink error is pending.
  [[nodiscard]] bool has_pending_error() const;

  // --- Executor interface (not for application use) ------------------------
  /// Called by executors when an action's effects are complete.
  void complete_action(ActionId id);
  /// Called by executors when a task body threw; captures the error for
  /// the next synchronization point and completes the action.
  void fail_action(ActionId id, std::exception_ptr error);
  /// Runtime lock + condition variable, used by ThreadedExecutor::wait.
  [[nodiscard]] std::mutex& mutex() noexcept { return mutex_; }
  [[nodiscard]] std::condition_variable& completion_cv() noexcept {
    return cv_;
  }

 private:
  struct StreamState {
    StreamId id;
    DomainId domain;
    CpuMask mask;
    OrderPolicy policy;
    std::uint64_t next_seq = 0;
    /// Incomplete actions in FIFO order (pending or dispatched).
    std::deque<std::shared_ptr<ActionRecord>> window;
    bool alive = true;
  };

  // Dependence bookkeeping attached per action, keyed by id.
  struct DepState {
    std::shared_ptr<ActionRecord> record;
    std::size_t blockers = 0;
    std::vector<ActionId> successors;
    StreamState* stream = nullptr;
  };

  [[nodiscard]] StreamState& stream_state(StreamId id);
  [[nodiscard]] const StreamState& stream_state(StreamId id) const;

  /// Inserts a fully-formed record into its stream window, wires
  /// dependence edges, and dispatches it if already ready. Takes the lock.
  std::shared_ptr<EventState> admit(StreamState& stream,
                                    std::shared_ptr<ActionRecord> record);

  /// Hands a ready action to the executor (no lock held).
  void dispatch(const std::shared_ptr<ActionRecord>& record);

  /// Drains the thread-local completion queue (trampoline that bounds
  /// recursion depth for chains of instantly-completing actions).
  void process_completion(ActionId id);

  RuntimeConfig config_;
  std::unique_ptr<Executor> executor_;
  Topology topology_;
  BufferPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;

  std::vector<Domain> domains_;
  std::vector<std::unique_ptr<StreamState>> streams_;
  BufferTable buffers_;
  /// Bytes charged against each (domain, kind) budget.
  std::map<std::pair<std::uint32_t, MemKind>, std::size_t> memory_used_;
  std::unordered_map<ActionId, DepState> deps_;
  std::uint32_t next_action_id_ = 0;
  RuntimeStats stats_;
  std::exception_ptr pending_error_;  ///< first unreported sink error
  TraceRecorder* trace_ = nullptr;
};

}  // namespace hs
