#pragma once

// Executor: the pluggable backend that runs dependence-ready actions.
//
// The Runtime owns all *semantics* — FIFO windows, operand conflict
// analysis, event plumbing. An Executor owns *time and resources*: where
// and when a ready action actually runs. Two implementations exist:
//
//  * ThreadedExecutor (core/threaded_executor.hpp): real worker threads
//    per domain, real memcpy transfers. Functional backend for tests and
//    examples.
//  * SimExecutor (sim/sim_executor.hpp): single-threaded discrete-event
//    simulation against calibrated cost models — the stand-in for the
//    paper's Xeon + Xeon Phi testbed.
//
// Both honor the runtime's fault model (RuntimeConfig::faults): injected
// transfer faults are retried per RetryPolicy — with real backoff sleeps
// on the threaded backend, virtual-time delays in the simulator — and
// retry exhaustion or an injected device loss escalates to
// Runtime::mark_domain_lost.

#include <functional>
#include <memory>

#include "core/action.hpp"
#include "core/types.hpp"

namespace hs {

class Runtime;

/// Completion callback handed to Executor::execute. Executors invoke it
/// at most once, after the action's effects are visible; the runtime
/// ignores it if the action was already completed by cancellation or
/// domain loss.
using CompletionFn = std::function<void()>;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Binds the executor to its runtime. Called once from the Runtime
  /// constructor, before any action is enqueued.
  virtual void attach(Runtime& runtime) = 0;

  /// Runs a dependence-ready action. Must not be called twice for the
  /// same action. The executor performs the action's effects (compute
  /// body, memcpy between incarnations, event wait/signal) and then calls
  /// `done`. The shared_ptr keeps the record alive across asynchronous
  /// continuations even if the runtime completes the action early
  /// (cancellation, domain loss).
  virtual void execute(const std::shared_ptr<ActionRecord>& action,
                       CompletionFn done) = 0;

  /// Blocks the host until `ready()` returns true. `ready` is
  /// self-synchronizing (the runtime's wait predicates take the locks
  /// they need); executors hold Runtime::mutex() only to pair the check
  /// with Runtime::completion_cv() so completion notifications are not
  /// lost. Executors that make progress on the calling thread (the
  /// simulator) advance their clock between polls.
  virtual void wait(const std::function<bool()>& ready) = 0;

  /// Deadline flavor of wait: returns false if `ready()` still does not
  /// hold after `timeout_s` seconds (wall seconds on the threaded
  /// backend, virtual seconds in the simulator).
  virtual bool wait_for(const std::function<bool()>& ready,
                        double timeout_s) = 0;

  /// Blocks until no action effects are in flight on executor-owned
  /// threads. Used before reclaiming storage (Runtime::evacuate): a
  /// claimed-failed action's body may still be running when its window
  /// entry has already drained. Single-threaded backends are trivially
  /// quiescent.
  virtual void quiesce() {}

  /// Whether this backend performs payload side effects (task bodies,
  /// transfer copies). Timing-only simulation turns them off; data
  /// movement in Runtime::evacuate is skipped accordingly.
  [[nodiscard]] virtual bool executes_payloads() const { return true; }

  /// Current time in seconds: wall clock for threaded execution, virtual
  /// clock for simulation.
  [[nodiscard]] virtual double now() const = 0;
};

}  // namespace hs
