#pragma once

// Executor: the pluggable backend that runs dependence-ready actions.
//
// The Runtime owns all *semantics* — FIFO windows, operand conflict
// analysis, event plumbing. An Executor owns *time and resources*: where
// and when a ready action actually runs. Two implementations exist:
//
//  * ThreadedExecutor (core/threaded_executor.hpp): real worker threads
//    per domain, real memcpy transfers. Functional backend for tests and
//    examples.
//  * SimExecutor (sim/sim_executor.hpp): single-threaded discrete-event
//    simulation against calibrated cost models — the stand-in for the
//    paper's Xeon + Xeon Phi testbed.

#include <functional>

#include "core/action.hpp"
#include "core/types.hpp"

namespace hs {

class Runtime;

/// Completion callback handed to Executor::execute. Executors invoke it
/// exactly once, after the action's effects are visible.
using CompletionFn = std::function<void()>;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Binds the executor to its runtime. Called once from the Runtime
  /// constructor, before any action is enqueued.
  virtual void attach(Runtime& runtime) = 0;

  /// Runs a dependence-ready action. Must not be called twice for the
  /// same action. The executor performs the action's effects (compute
  /// body, memcpy between incarnations, event wait/signal) and then calls
  /// `done`.
  virtual void execute(ActionRecord& action, CompletionFn done) = 0;

  /// Blocks the host until `ready()` returns true. `ready` is invoked
  /// with the runtime lock held; executors that make progress on the
  /// calling thread (the simulator) advance their clock between polls.
  virtual void wait(const std::function<bool()>& ready) = 0;

  /// Current time in seconds: wall clock for threaded execution, virtual
  /// clock for simulation.
  [[nodiscard]] virtual double now() const = 0;
};

}  // namespace hs
