#include "core/app_api.hpp"

namespace hs {

AppApi::AppApi(Runtime& runtime, AppConfig config) : runtime_(runtime) {
  require(config.streams_per_device > 0 || config.host_streams > 0,
          "AppApi needs at least one stream");

  // Device streams: evenly divide each non-host domain. Domains already
  // declared lost are skipped, so an AppApi built after a device failure
  // partitions only the survivors.
  for (std::size_t d = 1; d < runtime.domain_count(); ++d) {
    const DomainId domain{static_cast<std::uint32_t>(d)};
    if (!runtime.domain_alive(domain)) {
      continue;
    }
    const std::size_t threads = runtime.domain(domain).hw_threads();
    if (config.streams_per_device == 0) {
      continue;
    }
    const auto masks = CpuMask::partition(
        threads, std::min(config.streams_per_device, threads));
    for (const CpuMask& mask : masks) {
      device_stream_indices_.push_back(streams_.size());
      streams_.push_back(runtime.stream_create(domain, mask));
      stream_domains_.push_back(domain);
    }
    buffer_domains_.push_back(domain);
  }

  // Host-as-target streams over the non-reserved host threads.
  if (config.host_streams > 0) {
    const std::size_t total = runtime.domain(kHostDomain).hw_threads();
    require(total > config.host_threads_reserved,
            "no host threads left for host-as-target streams");
    const std::size_t usable = total - config.host_threads_reserved;
    const std::size_t count = std::min(config.host_streams, usable);
    const auto parts = CpuMask::partition(usable, count);
    for (const CpuMask& part : parts) {
      // Shift past the reserved source-endpoint threads.
      CpuMask mask;
      for (const std::size_t cpu : part.cpus()) {
        mask.set(cpu + config.host_threads_reserved);
      }
      host_stream_indices_.push_back(streams_.size());
      streams_.push_back(runtime.stream_create(kHostDomain, mask));
      stream_domains_.push_back(kHostDomain);
    }
  }
  buffer_domains_.push_back(kHostDomain);

  if (config.tenant != 0) {
    for (const StreamId stream : streams_) {
      runtime.stream_bind_tenant(stream, config.tenant, config.session);
    }
  }
}

StreamId AppApi::stream(std::size_t index) const {
  require(index < streams_.size(), "stream index out of range",
          Errc::not_found);
  return streams_[index];
}

DomainId AppApi::stream_domain(std::size_t index) const {
  require(index < streams_.size(), "stream index out of range",
          Errc::not_found);
  return stream_domains_[index];
}

std::vector<std::size_t> AppApi::streams_on(DomainId domain) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < stream_domains_.size(); ++i) {
    if (stream_domains_[i] == domain) {
      out.push_back(i);
    }
  }
  return out;
}

BufferId AppApi::create_buf(void* ptr, std::size_t size, BufferProps props) {
  const BufferId id = runtime_.buffer_create(ptr, size, props);
  try {
    for (const DomainId domain : buffer_domains_) {
      runtime_.buffer_instantiate(id, domain);
    }
  } catch (...) {
    // Transactional: a failed incarnation (e.g. budget exhausted) must
    // not leave a half-registered buffer behind.
    runtime_.buffer_destroy(id);
    throw;
  }
  return id;
}

void AppApi::adopt_buf(BufferId id) {
  for (const DomainId domain : buffer_domains_) {
    if (!runtime_.domain_alive(domain)) {
      continue;
    }
    runtime_.buffer_instantiate(id, domain);  // no-op where already present
  }
}

std::shared_ptr<EventState> AppApi::xfer_memory(std::size_t stream_index,
                                                void* ptr, std::size_t len,
                                                XferDir dir) {
  return runtime_.enqueue_transfer(stream(stream_index), ptr, len, dir);
}

std::shared_ptr<EventState> AppApi::invoke(
    std::size_t stream_index, std::string kernel, double flops,
    std::function<void(TaskContext&)> body,
    std::span<const OperandRef> operands) {
  ComputePayload payload;
  payload.body = std::move(body);
  payload.kernel = std::move(kernel);
  payload.flops = flops;
  return runtime_.enqueue_compute(stream(stream_index), std::move(payload),
                                  operands);
}

void AppApi::event_wait(
    std::span<const std::shared_ptr<EventState>> events, WaitMode mode) {
  runtime_.event_wait_host(events, mode);
}

std::shared_ptr<EventState> AppApi::stream_wait_event(
    std::size_t stream_index, std::shared_ptr<EventState> event) {
  return runtime_.enqueue_event_wait(stream(stream_index), std::move(event));
}

void AppApi::stream_synchronize(std::size_t stream_index) {
  runtime_.stream_synchronize(stream(stream_index));
}

}  // namespace hs
