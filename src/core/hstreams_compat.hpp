#pragma once

// hStreams-compatible C-style API ("app API" + selected "core API"
// entry points, [1]).
//
// The original library exposes process-global state behind flat C
// functions returning HSTR_RESULT codes, with streams as plain integers
// and sink-side kernels addressed *by name* (the host enqueues a string;
// the sink resolves it in a registry — the code-provisioning model that
// lets hStreams programs compile with any host compiler, §IV "Source
// code"). This layer mirrors that surface over the C++ runtime:
//
//   hStreams_RegisterKernel("dgemm_tile", fn);       // sink-side code
//   hStreams_app_init(4, ...);                       // partition domains
//   hStreams_app_create_buf(a, bytes);
//   hStreams_app_xfer_memory(a, a, bytes, 0, HSTR_SRC_TO_SINK, &ev);
//   hStreams_EnqueueCompute(0, "dgemm_tile", 2, 3, args, &ev2);
//   hStreams_app_event_wait(1, &ev2);
//   hStreams_app_fini();
//
// Heap arguments carry whole-buffer inout dependences, exactly like the
// original (operands are the buffers containing the addresses).

#include <cstdint>
#include <functional>
#include <memory>

#include "core/runtime.hpp"

namespace hs::compat {

/// Result codes, mirroring HSTR_RESULT.
enum HSTR_RESULT : int {
  HSTR_RESULT_SUCCESS = 0,
  HSTR_RESULT_NOT_INITIALIZED,
  HSTR_RESULT_ALREADY_INITIALIZED,
  HSTR_RESULT_NOT_FOUND,
  HSTR_RESULT_OUT_OF_RANGE,
  HSTR_RESULT_BAD_NAME,
  HSTR_RESULT_OUT_OF_MEMORY,
  HSTR_RESULT_INTERNAL_ERROR,
  HSTR_RESULT_TIME_OUT_REACHED,      ///< synchronization deadline expired
  HSTR_RESULT_REMOTE_ERROR,          ///< interconnect/link failure
  HSTR_RESULT_DEVICE_NOT_AVAILABLE,  ///< domain lost; refuses further work
  HSTR_RESULT_EVENT_CANCELED,        ///< action drained by cancellation
};
[[nodiscard]] const char* hStreams_ResultGetName(HSTR_RESULT result);

/// Maps a runtime error code onto the HSTR result surface. Exposed so
/// callers holding a Status (e.g. from a timed synchronize) can convert
/// without round-tripping through an exception.
[[nodiscard]] HSTR_RESULT hStreams_ResultFromErrc(Errc code);

/// Opaque completion-event handle.
using HSTR_EVENT = std::uint64_t;
inline constexpr HSTR_EVENT HSTR_NULL_EVENT = 0;

/// Transfer direction (source endpoint = host, sink = stream's domain).
enum HSTR_XFER_DIRECTION : int {
  HSTR_SRC_TO_SINK = 0,
  HSTR_SINK_TO_SRC = 1,
};

/// Sink-side kernel: receives the scalar/heap argument array (heap
/// arguments already translated to sink-local addresses) and the task
/// context.
using HSTR_KERNEL =
    std::function<void(const std::uint64_t* args, std::size_t nargs,
                       TaskContext& ctx)>;

/// One EnqueueCompute argument: scalars pass through; heap arguments are
/// proxy addresses that (a) become whole-buffer inout dependences and
/// (b) arrive in the kernel translated to the sink domain.
struct HSTR_ARG {
  std::uint64_t value = 0;
  bool is_heap = false;

  [[nodiscard]] static HSTR_ARG scalar(std::uint64_t v) {
    return {v, false};
  }
  [[nodiscard]] static HSTR_ARG heap(void* proxy) {
    return {reinterpret_cast<std::uint64_t>(proxy), true};
  }
};

// --- Process-global lifecycle ------------------------------------------------

/// Overrides the platform discovered by the next hStreams_app_init
/// (default: host + 1 emulated KNC-like card). Must be called before
/// init. Passing a SimPlatform-style executor is possible through
/// hStreams_InitWithRuntime below.
HSTR_RESULT hStreams_SetPlatform(const PlatformDesc& platform);

/// The app-API initializer: discovers domains and evenly divides each
/// non-host domain into `streams_per_domain` streams.
HSTR_RESULT hStreams_app_init(std::uint32_t streams_per_domain,
                              std::uint32_t host_streams = 0);

/// Expert path: adopt an existing runtime (e.g. one built on the
/// simulation executor). The caller keeps ownership.
HSTR_RESULT hStreams_InitWithRuntime(Runtime* runtime,
                                     std::uint32_t streams_per_domain,
                                     std::uint32_t host_streams = 0);

HSTR_RESULT hStreams_app_fini();
[[nodiscard]] bool hStreams_IsInitialized();

// --- Discovery ----------------------------------------------------------------

HSTR_RESULT hStreams_GetNumPhysDomains(std::uint32_t* out_domains);
HSTR_RESULT hStreams_GetNumLogStreams(std::uint32_t* out_streams);

// --- Buffers -------------------------------------------------------------------

HSTR_RESULT hStreams_app_create_buf(void* base, std::uint64_t bytes);
HSTR_RESULT hStreams_DeAlloc(void* base);

// --- Kernels -------------------------------------------------------------------

/// Registers sink-side code under a name (the original ships a shared
/// library to the card and resolves by symbol name).
HSTR_RESULT hStreams_RegisterKernel(const char* name, HSTR_KERNEL kernel);

// --- Actions -------------------------------------------------------------------

HSTR_RESULT hStreams_app_xfer_memory(void* dst, void* src,
                                     std::uint64_t bytes,
                                     std::uint32_t log_stream,
                                     HSTR_XFER_DIRECTION direction,
                                     HSTR_EVENT* out_event);

HSTR_RESULT hStreams_EnqueueCompute(std::uint32_t log_stream,
                                    const char* kernel_name,
                                    const HSTR_ARG* args, std::size_t nargs,
                                    HSTR_EVENT* out_event);

/// Enqueues a wait in `log_stream` on a set of events; with addresses,
/// only later actions touching those buffers are held back (the
/// hStreams_EventStreamWait dependence-scoping feature, §IV).
HSTR_RESULT hStreams_EventStreamWait(std::uint32_t log_stream,
                                     std::uint32_t num_events,
                                     const HSTR_EVENT* events,
                                     std::int32_t num_addresses,
                                     void** addresses,
                                     HSTR_EVENT* out_event);

// --- Synchronization -------------------------------------------------------------

/// Blocks until all listed events fire (§IV: waiting "on a set of
/// events ... when one or all the events are finished").
HSTR_RESULT hStreams_app_event_wait(std::uint32_t num_events,
                                    const HSTR_EVENT* events);
HSTR_RESULT hStreams_app_event_wait_any(std::uint32_t num_events,
                                        const HSTR_EVENT* events);
HSTR_RESULT hStreams_app_stream_sync(std::uint32_t log_stream);
HSTR_RESULT hStreams_app_thread_sync();

}  // namespace hs::compat
