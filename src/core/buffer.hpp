#pragma once

// Buffers and the unified source proxy address space.
//
// §II: "All memory that can be referenced by user code is represented in
// a unified source proxy address space, which is partitioned into
// buffers. The virtual address of the base pointer of the buffer is
// stored for each domain in which the buffer is instantiated, so when an
// operand of an action associated with a stream falls within that buffer,
// its addresses are easily translated from the source proxy address to
// the virtual address needed for that stream's domain."
//
// The host incarnation aliases the user's own memory (creating a buffer
// never copies); device incarnations are separate allocations standing in
// for card-side memory.

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "core/types.hpp"

namespace hs {

/// Usage properties a buffer creator may declare (§II: "Buffers give
/// users a way to declare usage properties ... but give tuners control
/// over the type of memory the data is bound to").
struct BufferProps {
  MemKind mem_kind = MemKind::ddr;
  bool read_only = false;  ///< sink-side code promises not to write
};

/// A set of disjoint, merged byte intervals [begin, end) over a buffer.
/// The unit of the coherence protocol: each incarnation's validity and
/// the derived dirty ranges are interval sets. Not internally locked —
/// the owning Buffer's leaf mutex serializes access.
class IntervalSet {
 public:
  /// Adds [begin, end), merging with overlapping/adjacent intervals.
  void add(std::size_t begin, std::size_t end) {
    if (begin >= end) {
      return;
    }
    auto it = ranges_.lower_bound(begin);
    if (it != ranges_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second >= begin) {
        begin = prev->first;
        end = std::max(end, prev->second);
        ranges_.erase(prev);
      }
    }
    while (it != ranges_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = ranges_.erase(it);
    }
    ranges_[begin] = end;
  }

  /// Removes [begin, end), splitting intervals that straddle the window.
  void subtract(std::size_t begin, std::size_t end) {
    if (begin >= end) {
      return;
    }
    auto it = ranges_.lower_bound(begin);
    if (it != ranges_.begin()) {
      --it;  // the previous interval may reach into the window
    }
    while (it != ranges_.end() && it->first < end) {
      const std::size_t rb = it->first;
      const std::size_t re = it->second;
      if (re <= begin) {
        ++it;
        continue;
      }
      it = ranges_.erase(it);
      if (rb < begin) {
        ranges_[rb] = begin;
      }
      if (re > end) {
        ranges_[end] = re;
      }
    }
  }

  /// Replaces this set's contents over [begin, end) with `src`'s contents
  /// over the same window (the transfer rule: the destination's bytes
  /// become the source's bytes, so its validity becomes the source's).
  void assign_window(std::size_t begin, std::size_t end,
                     const IntervalSet& src) {
    subtract(begin, end);
    for (const auto& [rb, re] : src.ranges_) {
      const std::size_t b = std::max(rb, begin);
      const std::size_t e = std::min(re, end);
      if (b < e) {
        add(b, e);
      }
    }
  }

  /// True if [begin, end) lies entirely within one interval.
  [[nodiscard]] bool covers(std::size_t begin, std::size_t end) const {
    if (begin >= end) {
      return true;
    }
    auto it = ranges_.upper_bound(begin);
    if (it == ranges_.begin()) {
      return false;
    }
    --it;
    return it->second >= end;
  }

  /// True if [begin, end) overlaps any interval.
  [[nodiscard]] bool intersects(std::size_t begin, std::size_t end) const {
    if (begin >= end) {
      return false;
    }
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin() && std::prev(it)->second > begin) {
      return true;
    }
    return it != ranges_.end() && it->first < end;
  }

  /// This set minus `other`, as (offset, length) pairs, ascending.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> minus(
      const IntervalSet& other) const {
    IntervalSet diff = *this;
    for (const auto& [rb, re] : other.ranges_) {
      diff.subtract(rb, re);
    }
    std::vector<std::pair<std::size_t, std::size_t>> out;
    out.reserve(diff.ranges_.size());
    for (const auto& [rb, re] : diff.ranges_) {
      out.emplace_back(rb, re - rb);
    }
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return ranges_.empty(); }
  void clear() noexcept { ranges_.clear(); }
  /// begin -> end, disjoint and merged.
  [[nodiscard]] const std::map<std::size_t, std::size_t>& ranges()
      const noexcept {
    return ranges_;
  }

 private:
  std::map<std::size_t, std::size_t> ranges_;
};

/// One buffer: a range of the proxy address space plus its per-domain
/// incarnations.
class Buffer {
 public:
  Buffer(BufferId id, std::byte* proxy_base, std::size_t size,
         BufferProps props)
      : id_(id), proxy_base_(proxy_base), size_(size), props_(props) {
    require(proxy_base != nullptr, "buffer proxy base may not be null");
    require(size > 0, "buffer size must be positive");
    // The host incarnation aliases the user allocation and starts valid
    // over the whole buffer (user memory is the initial logical value).
    incarnations_[kHostDomain] = proxy_base;
    validity_[kHostDomain].add(0, size);
  }

  [[nodiscard]] BufferId id() const noexcept { return id_; }
  [[nodiscard]] std::byte* proxy_base() const noexcept { return proxy_base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const BufferProps& props() const noexcept { return props_; }

  /// True if `ptr` lies within this buffer's proxy range.
  [[nodiscard]] bool contains(const void* ptr) const noexcept {
    const auto* p = static_cast<const std::byte*>(ptr);
    return p >= proxy_base_ && p < proxy_base_ + size_;
  }

  /// Offset of a proxy pointer within this buffer.
  [[nodiscard]] std::size_t offset_of(const void* ptr) const {
    require(contains(ptr), "pointer not within buffer", Errc::out_of_range);
    return static_cast<std::size_t>(static_cast<const std::byte*>(ptr) -
                                    proxy_base_);
  }

  /// Declares the incarnation of this buffer in `domain`. Storage is
  /// materialized lazily on first access (zero-initialized then, like
  /// freshly allocated card memory), so buffers that are only *scheduled*
  /// against — timing-only simulation runs — never commit physical pages.
  void instantiate(DomainId domain) {
    const std::scoped_lock lock(mu_);
    incarnations_.try_emplace(domain, nullptr);
    if (spilled_.erase(domain) > 0) {
      // Rebuilt after a governor spill: the fresh incarnation is invalid
      // over ranges the eviction dropped, so readers must demand-page
      // them back from the host copy (prepare_residency).
      demand_paged_.insert(domain);
    }
  }

  /// Drops the incarnation in `domain` (host incarnation cannot be
  /// dropped: it aliases user memory). Any validity/dirty state goes with
  /// it — callers that care must sync back (or explicitly discard) first.
  void deinstantiate(DomainId domain) {
    require(domain != kHostDomain, "cannot deinstantiate the host alias");
    const std::scoped_lock lock(mu_);
    incarnations_.erase(domain);
    validity_.erase(domain);
    spilled_.erase(domain);
    demand_paged_.erase(domain);
    // Owned storage is retained until buffer destruction; incarnation
    // maps drive translation, so a dropped domain can no longer be
    // addressed even though its bytes linger until then.
  }

  // --- Governor spill marks ---------------------------------------------
  // A spilled incarnation was dropped by the memory governor to make
  // room under a budget (its dirty ranges synced home first). The mark
  // keeps the buffer eligible for enqueue checks and demand re-fetch in
  // that domain — the incarnation reappears transparently when an action
  // needs it. instantiate()/deinstantiate() clear the mark.

  void mark_spilled(DomainId domain) {
    const std::scoped_lock lock(mu_);
    spilled_.insert(domain);
  }

  /// Eviction's transition — drop the incarnation (and its validity) and
  /// set the spill mark — in ONE leaf-lock critical section, so readers
  /// of usable_in() can never observe the buffer as neither instantiated
  /// nor spilled mid-eviction.
  void spill(DomainId domain) {
    require(domain != kHostDomain, "cannot spill the host alias");
    const std::scoped_lock lock(mu_);
    incarnations_.erase(domain);
    validity_.erase(domain);
    spilled_.insert(domain);
  }

  /// True when `domain` holds a live incarnation or a governor spill
  /// mark. Both states are read under one leaf-lock acquisition: the
  /// spill()/instantiate() transitions swap them atomically, so separate
  /// instantiated_in() + spilled_from() calls could race into a bogus
  /// "neither" — enqueue-time operand checks must use this instead.
  [[nodiscard]] bool usable_in(DomainId domain) const noexcept {
    const std::scoped_lock lock(mu_);
    return incarnations_.contains(domain) || spilled_.contains(domain);
  }

  void clear_spilled(DomainId domain) {
    const std::scoped_lock lock(mu_);
    spilled_.erase(domain);
  }

  [[nodiscard]] bool spilled_from(DomainId domain) const noexcept {
    const std::scoped_lock lock(mu_);
    return spilled_.contains(domain);
  }

  /// True once the incarnation has been rebuilt after a governor spill.
  /// Readers of such an incarnation restore missing ranges from the host
  /// before executing; never-spilled incarnations skip that work (and
  /// keep the pre-governor semantics for ranges the app never uploaded).
  [[nodiscard]] bool demand_paged(DomainId domain) const noexcept {
    const std::scoped_lock lock(mu_);
    return demand_paged_.contains(domain);
  }

  [[nodiscard]] bool instantiated_in(DomainId domain) const noexcept {
    const std::scoped_lock lock(mu_);
    return incarnations_.contains(domain);
  }

  /// Translates a proxy offset to the domain-local address, materializing
  /// the incarnation's storage on first touch.
  [[nodiscard]] std::byte* local_address(DomainId domain,
                                         std::size_t offset) {
    const std::scoped_lock lock(mu_);
    const auto it = incarnations_.find(domain);
    require(it != incarnations_.end(), "buffer not instantiated in domain",
            Errc::buffer_not_instantiated);
    require(offset <= size_, "offset beyond buffer", Errc::out_of_range);
    if (it->second == nullptr) {
      auto storage = std::make_unique<std::byte[]>(size_);  // zeroed
      it->second = storage.get();
      owned_.push_back(std::move(storage));
    }
    return it->second + offset;
  }

  // --- Byte-range coherence (validity intervals) ------------------------
  // MOESI-lite over incarnations: an incarnation is *valid* over a byte
  // range when its bytes equal the logical current value of that range.
  // The host starts valid over the whole buffer (it aliases the user's
  // initialized memory); device incarnations start entirely invalid. A
  // completed compute validates the ranges it wrote in its own domain and
  // invalidates every other incarnation there; a completed transfer makes
  // the destination's validity over the moved range a copy of the
  // source's. Two incarnations both valid over a range therefore hold
  // byte-identical data — the condition the runtime's online transfer
  // elision tests. Dirty ranges ("device newer than host", the PR 3
  // evacuate contract) fall out as valid(device) minus valid(host).

  /// A completed compute in `domain` wrote [offset, offset+len): `domain`
  /// now holds the only current copy, every other incarnation is stale.
  void note_compute_write(DomainId domain, std::size_t offset,
                          std::size_t len) {
    if (len == 0) {
      return;
    }
    const std::scoped_lock lock(mu_);
    for (auto& [d, valid] : validity_) {
      if (d != domain) {
        valid.subtract(offset, offset + len);
      }
    }
    validity_[domain].add(offset, offset + len);
    // A compute (or host) write changes the buffer's logical value, so
    // the range is dirty relative to the last checkpoint epoch. Transfers
    // deliberately do not land here: they move bytes between incarnations
    // without changing the logical content.
    ckpt_dirty_.add(offset, offset + len);
  }

  /// A failed compute body in `domain` may have partially written
  /// [offset, offset+len): the range holds garbage there. Only `domain`'s
  /// validity is lost; other incarnations are untouched.
  void note_write_garbage(DomainId domain, std::size_t offset,
                          std::size_t len) {
    const std::scoped_lock lock(mu_);
    const auto it = validity_.find(domain);
    if (it != validity_.end()) {
      it->second.subtract(offset, offset + len);
    }
  }

  /// A completed transfer copied [offset, offset+len) from `from`'s
  /// incarnation into `to`'s: `to`'s bytes over the range are now exactly
  /// `from`'s, so its validity over the window becomes `from`'s.
  void note_transfer(DomainId from, DomainId to, std::size_t offset,
                     std::size_t len) {
    if (len == 0 || from == to) {
      return;
    }
    const std::scoped_lock lock(mu_);
    static const IntervalSet kEmpty;
    const auto src = validity_.find(from);
    validity_[to].assign_window(offset, offset + len,
                                src == validity_.end() ? kEmpty : src->second);
  }

  /// True when `domain`'s incarnation is valid over the whole range.
  [[nodiscard]] bool valid_over(DomainId domain, std::size_t offset,
                                std::size_t len) const {
    const std::scoped_lock lock(mu_);
    const auto it = validity_.find(domain);
    return it != validity_.end() && it->second.covers(offset, offset + len);
  }

  /// Valid (offset, length) ranges of `domain`, ascending, disjoint.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  valid_ranges(DomainId domain) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    const std::scoped_lock lock(mu_);
    const auto it = validity_.find(domain);
    if (it != validity_.end()) {
      out.reserve(it->second.ranges().size());
      for (const auto& [begin, end] : it->second.ranges()) {
        out.emplace_back(begin, end - begin);
      }
    }
    return out;
  }

  /// Drops all validity of `domain` without syncing — recovery paths that
  /// restore from their own checkpoint. (Dirty state goes with it: a
  /// domain with no validity can be newer than the host nowhere.)
  void discard_dirty(DomainId domain) {
    if (domain == kHostDomain) {
      return;
    }
    const std::scoped_lock lock(mu_);
    validity_.erase(domain);
  }

  /// The demand re-fetch set for a read window: ranges of
  /// [offset, offset+len) the host can restore into `domain`'s
  /// incarnation that are not already valid there —
  /// (valid(host) ∩ window) − valid(domain). Ascending, disjoint.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  refetch_ranges(DomainId domain, std::size_t offset, std::size_t len) const {
    const std::scoped_lock lock(mu_);
    const auto host = validity_.find(kHostDomain);
    if (host == validity_.end() || len == 0) {
      return {};
    }
    IntervalSet want;
    want.assign_window(offset, offset + len, host->second);
    static const IntervalSet kEmpty;
    const auto dev = validity_.find(domain);
    return want.minus(dev == validity_.end() ? kEmpty : dev->second);
  }

  /// True when `domain` holds ranges newer than the host copy.
  [[nodiscard]] bool dirty_in(DomainId domain) const noexcept {
    const std::scoped_lock lock(mu_);
    return !dirty_minus_host(domain).empty();
  }

  /// Dirty (offset, length) ranges of `domain` — ranges where the device
  /// incarnation is valid and the host alias is not, i.e. where a sink
  /// compute wrote and nothing synced back. Ascending, disjoint.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> dirty_ranges(
      DomainId domain) const {
    const std::scoped_lock lock(mu_);
    return dirty_minus_host(domain);
  }

  // --- Checkpoint epoch-dirty tracking ----------------------------------
  // A second interval set, orthogonal to per-domain validity: which byte
  // ranges have had their *logical value* change since the last
  // checkpoint epoch. Fed by note_compute_write (device and host writes
  // alike — note_host_write routes through it); drained atomically by the
  // checkpoint layer when a snapshot is cut.

  /// Marks [offset, offset+len) changed-since-last-epoch. The checkpoint
  /// layer seeds the whole buffer this way when tracking begins, and
  /// callers without coherence tracking use it to force full snapshots.
  void mark_ckpt_dirty(std::size_t offset, std::size_t len) {
    if (len == 0) {
      return;
    }
    const std::scoped_lock lock(mu_);
    ckpt_dirty_.add(offset, offset + len);
  }

  /// Returns the changed-since-last-epoch (offset, length) ranges,
  /// ascending and disjoint, and clears them — the epoch boundary.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  take_ckpt_dirty() {
    const std::scoped_lock lock(mu_);
    std::vector<std::pair<std::size_t, std::size_t>> out;
    out.reserve(ckpt_dirty_.ranges().size());
    for (const auto& [begin, end] : ckpt_dirty_.ranges()) {
      out.emplace_back(begin, end - begin);
    }
    ckpt_dirty_.clear();
    return out;
  }

 private:
  /// valid(domain) - valid(host), mu_ held.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  dirty_minus_host(DomainId domain) const {
    if (domain == kHostDomain) {
      return {};
    }
    const auto it = validity_.find(domain);
    if (it == validity_.end()) {
      return {};
    }
    static const IntervalSet kEmpty;
    const auto host = validity_.find(kHostDomain);
    return it->second.minus(host == validity_.end() ? kEmpty : host->second);
  }

  BufferId id_;
  std::byte* proxy_base_;
  std::size_t size_;
  BufferProps props_;
  /// Guards incarnations_, validity_ and owned_. The identity fields
  /// above are immutable after construction and read lock-free. Leaf lock
  /// in the runtime's hierarchy: nothing else is acquired while it is
  /// held, so executor threads can translate addresses and track
  /// coherence on different buffers (or the same one) without a global
  /// serialization point.
  mutable std::mutex mu_;
  std::map<DomainId, std::byte*> incarnations_;
  /// Per-incarnation validity intervals. Host seeded whole-buffer valid
  /// at construction; absent entry == entirely invalid.
  std::map<DomainId, IntervalSet> validity_;
  /// Ranges whose logical value changed since the last checkpoint epoch.
  IntervalSet ckpt_dirty_;
  /// Domains whose incarnation the memory governor spilled (demand
  /// re-fetch eligible); cleared by instantiate/deinstantiate.
  std::set<DomainId> spilled_;
  /// Domains whose incarnation was rebuilt after a spill — readers
  /// demand-page missing ranges from the host (prepare_residency);
  /// cleared by deinstantiate.
  std::set<DomainId> demand_paged_;
  std::vector<std::unique_ptr<std::byte[]>> owned_;
};

/// A resolved memory operand: buffer + byte range + access mode. This is
/// the unit of dependence analysis.
struct Operand {
  BufferId buffer;
  std::size_t offset = 0;
  std::size_t length = 0;
  Access access = Access::in;

  /// True if the byte ranges overlap and at least one side writes.
  [[nodiscard]] bool conflicts_with(const Operand& other) const noexcept {
    if (buffer != other.buffer) {
      return false;
    }
    if (!writes(access) && !writes(other.access)) {
      return false;
    }
    return offset < other.offset + other.length &&
           other.offset < offset + length;
  }
};

// --- Per-buffer dependence index ------------------------------------------
//
// The admission fast path. Legacy dependence analysis intersected every
// new action's operands against every incomplete action in the stream
// window — O(window x operands) pairwise work per enqueue, which is
// exactly the cost the paper's Fig. 3 overhead budget cannot afford at
// deep windows. The index inverts the scan: each stream keeps, per
// buffer, an interval map over touched byte ranges whose segments list
// the *incomplete* writers and readers of that range. Admission then
// asks "who wrote/read these bytes?" in O(log segments + matches)
// instead of walking the window. Entries are inserted at admission and
// removed at completion, both under the owning stream's admission lock.
//
// Edge-exactness: every entry carries its original byte range and the
// final conflict test is the same strict-overlap predicate
// Operand::conflicts_with uses, so the set of predecessor actions found
// is *identical* to the legacy pairwise scan (the segments only
// accelerate candidate discovery). HS_DEP_ORACLE=1 cross-checks this on
// every admission.

/// One indexed operand use: which action, where in the stream's FIFO
/// order, the exact byte range, and whether it writes.
struct DepUse {
  ActionId action;
  std::uint64_t seq = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool write = false;
};

/// Interval-keyed last-writer/live-reader lists over one buffer's byte
/// ranges (for one stream). Not internally locked: the owning stream's
/// admission lock serializes all access.
class BufferDepIndex {
 public:
  /// Records an incomplete use of [op.offset, op.offset+op.length).
  void insert(const Operand& op, ActionId action, std::uint64_t seq);

  /// Appends every recorded use conflicting with `op` (writers always;
  /// readers only when `op` writes) to `out`. Callers dedup by action.
  /// Returns the number of elementary steps taken (segments visited plus
  /// entries examined) — the dep_scan_steps metric.
  std::size_t collect(const Operand& op, std::vector<DepUse>& out) const;

  /// Removes `action`'s entries over [op.offset, op.offset+op.length)
  /// (called once per operand at completion).
  void erase(const Operand& op, ActionId action);

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }

 private:
  /// Entries touching [key, end). Segments are disjoint and sorted; a
  /// use spanning several segments appears in each.
  struct Segment {
    std::size_t end = 0;
    std::vector<DepUse> writers;
    std::vector<DepUse> readers;
  };

  /// Ensures a segment boundary at `at` (splits the covering segment).
  void split_at(std::size_t at);

  std::map<std::size_t, Segment> segments_;  ///< key = segment begin
};

/// A stream's whole dependence index: BufferId -> interval index.
/// Maintained under the stream's admission lock.
class StreamDepIndex {
 public:
  void insert(const Operand& op, ActionId action, std::uint64_t seq);
  /// See BufferDepIndex::collect; returns steps taken.
  std::size_t collect(const Operand& op, std::vector<DepUse>& out) const;
  void erase(const Operand& op, ActionId action);
  [[nodiscard]] bool empty() const noexcept { return buffers_.empty(); }

 private:
  std::unordered_map<BufferId, BufferDepIndex> buffers_;
};

/// Registry mapping proxy pointers to buffers. Lookup is by interval:
/// buffers are keyed by base address; proxy ranges never overlap.
class BufferTable {
 public:
  /// Registers a buffer wrapping user memory [base, base+size).
  BufferId create(void* base, std::size_t size, BufferProps props);

  /// Removes a buffer. All incarnations are dropped.
  void destroy(BufferId id);

  [[nodiscard]] Buffer& get(BufferId id);
  [[nodiscard]] const Buffer& get(BufferId id) const;

  /// Finds the buffer containing the proxy range [ptr, ptr+len).
  /// The whole range must lie within a single buffer.
  [[nodiscard]] Buffer& find_containing(const void* ptr, std::size_t len);

  /// Resolves a proxy range + access into an Operand.
  [[nodiscard]] Operand resolve(const void* ptr, std::size_t len,
                                Access access);

  [[nodiscard]] std::size_t count() const noexcept { return buffers_.size(); }

 private:
  std::map<const std::byte*, std::unique_ptr<Buffer>> by_base_;
  std::map<BufferId, Buffer*> buffers_;
  std::uint32_t next_id_ = 0;
};

}  // namespace hs
