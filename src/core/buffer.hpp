#pragma once

// Buffers and the unified source proxy address space.
//
// §II: "All memory that can be referenced by user code is represented in
// a unified source proxy address space, which is partitioned into
// buffers. The virtual address of the base pointer of the buffer is
// stored for each domain in which the buffer is instantiated, so when an
// operand of an action associated with a stream falls within that buffer,
// its addresses are easily translated from the source proxy address to
// the virtual address needed for that stream's domain."
//
// The host incarnation aliases the user's own memory (creating a buffer
// never copies); device incarnations are separate allocations standing in
// for card-side memory.

#include <map>
#include <memory>
#include <optional>

#include "common/status.hpp"
#include "core/types.hpp"

namespace hs {

/// Usage properties a buffer creator may declare (§II: "Buffers give
/// users a way to declare usage properties ... but give tuners control
/// over the type of memory the data is bound to").
struct BufferProps {
  MemKind mem_kind = MemKind::ddr;
  bool read_only = false;  ///< sink-side code promises not to write
};

/// One buffer: a range of the proxy address space plus its per-domain
/// incarnations.
class Buffer {
 public:
  Buffer(BufferId id, std::byte* proxy_base, std::size_t size,
         BufferProps props)
      : id_(id), proxy_base_(proxy_base), size_(size), props_(props) {
    require(proxy_base != nullptr, "buffer proxy base may not be null");
    require(size > 0, "buffer size must be positive");
    // The host incarnation aliases the user allocation.
    incarnations_[kHostDomain] = proxy_base;
  }

  [[nodiscard]] BufferId id() const noexcept { return id_; }
  [[nodiscard]] std::byte* proxy_base() const noexcept { return proxy_base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const BufferProps& props() const noexcept { return props_; }

  /// True if `ptr` lies within this buffer's proxy range.
  [[nodiscard]] bool contains(const void* ptr) const noexcept {
    const auto* p = static_cast<const std::byte*>(ptr);
    return p >= proxy_base_ && p < proxy_base_ + size_;
  }

  /// Offset of a proxy pointer within this buffer.
  [[nodiscard]] std::size_t offset_of(const void* ptr) const {
    require(contains(ptr), "pointer not within buffer", Errc::out_of_range);
    return static_cast<std::size_t>(static_cast<const std::byte*>(ptr) -
                                    proxy_base_);
  }

  /// Declares the incarnation of this buffer in `domain`. Storage is
  /// materialized lazily on first access (zero-initialized then, like
  /// freshly allocated card memory), so buffers that are only *scheduled*
  /// against — timing-only simulation runs — never commit physical pages.
  void instantiate(DomainId domain) {
    incarnations_.try_emplace(domain, nullptr);
  }

  /// Drops the incarnation in `domain` (host incarnation cannot be
  /// dropped: it aliases user memory).
  void deinstantiate(DomainId domain) {
    require(domain != kHostDomain, "cannot deinstantiate the host alias");
    incarnations_.erase(domain);
    // Owned storage is retained until buffer destruction; incarnation
    // maps drive translation, so a dropped domain can no longer be
    // addressed even though its bytes linger until then.
  }

  [[nodiscard]] bool instantiated_in(DomainId domain) const noexcept {
    return incarnations_.contains(domain);
  }

  /// Translates a proxy offset to the domain-local address, materializing
  /// the incarnation's storage on first touch.
  [[nodiscard]] std::byte* local_address(DomainId domain,
                                         std::size_t offset) {
    const auto it = incarnations_.find(domain);
    require(it != incarnations_.end(), "buffer not instantiated in domain",
            Errc::buffer_not_instantiated);
    require(offset <= size_, "offset beyond buffer", Errc::out_of_range);
    if (it->second == nullptr) {
      auto storage = std::make_unique<std::byte[]>(size_);  // zeroed
      it->second = storage.get();
      owned_.push_back(std::move(storage));
    }
    return it->second + offset;
  }

 private:
  BufferId id_;
  std::byte* proxy_base_;
  std::size_t size_;
  BufferProps props_;
  std::map<DomainId, std::byte*> incarnations_;
  std::vector<std::unique_ptr<std::byte[]>> owned_;
};

/// A resolved memory operand: buffer + byte range + access mode. This is
/// the unit of dependence analysis.
struct Operand {
  BufferId buffer;
  std::size_t offset = 0;
  std::size_t length = 0;
  Access access = Access::in;

  /// True if the byte ranges overlap and at least one side writes.
  [[nodiscard]] bool conflicts_with(const Operand& other) const noexcept {
    if (buffer != other.buffer) {
      return false;
    }
    if (!writes(access) && !writes(other.access)) {
      return false;
    }
    return offset < other.offset + other.length &&
           other.offset < offset + length;
  }
};

/// Registry mapping proxy pointers to buffers. Lookup is by interval:
/// buffers are keyed by base address; proxy ranges never overlap.
class BufferTable {
 public:
  /// Registers a buffer wrapping user memory [base, base+size).
  BufferId create(void* base, std::size_t size, BufferProps props);

  /// Removes a buffer. All incarnations are dropped.
  void destroy(BufferId id);

  [[nodiscard]] Buffer& get(BufferId id);
  [[nodiscard]] const Buffer& get(BufferId id) const;

  /// Finds the buffer containing the proxy range [ptr, ptr+len).
  /// The whole range must lie within a single buffer.
  [[nodiscard]] Buffer& find_containing(const void* ptr, std::size_t len);

  /// Resolves a proxy range + access into an Operand.
  [[nodiscard]] Operand resolve(const void* ptr, std::size_t len,
                                Access access);

  [[nodiscard]] std::size_t count() const noexcept { return buffers_.size(); }

 private:
  std::map<const std::byte*, std::unique_ptr<Buffer>> by_base_;
  std::map<BufferId, Buffer*> buffers_;
  std::uint32_t next_id_ = 0;
};

}  // namespace hs
