#include "core/trace.hpp"

#include <ostream>

#include "common/status.hpp"

namespace hs {

void TraceRecorder::on_enqueue(const Record& partial) {
  const std::scoped_lock lock(mutex_);
  const std::size_t index = records_.size();
  records_.push_back(partial);
  if (by_action_.size() <= partial.action.value) {
    by_action_.resize(partial.action.value + 1,
                      static_cast<std::size_t>(-1));
  }
  by_action_[partial.action.value] = index;
}

void TraceRecorder::on_dispatch(ActionId id, double now) {
  const std::scoped_lock lock(mutex_);
  require(id.value < by_action_.size(), "trace: unknown action",
          Errc::not_found);
  records_[by_action_[id.value]].dispatch_s = now;
}

void TraceRecorder::on_complete(ActionId id, double now) {
  const std::scoped_lock lock(mutex_);
  require(id.value < by_action_.size(), "trace: unknown action",
          Errc::not_found);
  records_[by_action_[id.value]].complete_s = now;
}

void TraceRecorder::on_elide(ActionId id) {
  const std::scoped_lock lock(mutex_);
  require(id.value < by_action_.size(), "trace: unknown action",
          Errc::not_found);
  records_[by_action_[id.value]].elided = true;
}

void TraceRecorder::on_ooc(std::string kind, BufferId buffer, DomainId domain,
                           std::size_t bytes, double now) {
  const std::scoped_lock lock(mutex_);
  ooc_.push_back(OocEvent{std::move(kind), buffer, domain, bytes, now});
}

std::vector<TraceRecorder::Record> TraceRecorder::records() const {
  const std::scoped_lock lock(mutex_);
  return records_;
}

std::vector<TraceRecorder::OocEvent> TraceRecorder::ooc_events() const {
  const std::scoped_lock lock(mutex_);
  return ooc_;
}

std::size_t TraceRecorder::size() const {
  const std::scoped_lock lock(mutex_);
  return records_.size();
}

namespace {

const char* type_name(ActionType type) {
  switch (type) {
    case ActionType::compute: return "compute";
    case ActionType::transfer: return "transfer";
    case ActionType::event_wait: return "wait";
    case ActionType::event_signal: return "signal";
    case ActionType::alloc: return "alloc";
  }
  return "?";
}

/// Minimal JSON string escaping for labels.
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::scoped_lock lock(mutex_);
  os << "[";
  bool first = true;
  for (const Record& r : records_) {
    if (r.complete_s < r.dispatch_s) {
      continue;  // still in flight
    }
    if (!first) {
      os << ",";
    }
    first = false;
    // Execution span.
    os << "\n{\"ph\":\"X\",\"name\":\"";
    write_escaped(os, r.label.empty() ? type_name(r.type) : r.label);
    os << "\",\"cat\":\"" << type_name(r.type) << "\",\"pid\":"
       << r.domain.value << ",\"tid\":" << r.stream.value
       << ",\"ts\":" << r.dispatch_s * 1e6
       << ",\"dur\":" << (r.complete_s - r.dispatch_s) * 1e6
       << ",\"args\":{\"action\":" << r.action.value
       << ",\"flops\":" << r.flops << ",\"bytes\":" << r.bytes;
    if (r.graph != 0) {
      os << ",\"graph\":" << r.graph;
    }
    if (r.tenant != 0) {
      os << ",\"tenant\":" << r.tenant << ",\"session\":" << r.session;
    }
    if (r.elided) {
      os << ",\"elided\":1";
    }
    os << "}}";
    // Blocked span (enqueue -> dispatch), if the action waited.
    if (r.dispatch_s > r.enqueue_s) {
      os << ",\n{\"ph\":\"X\",\"name\":\"blocked:";
      write_escaped(os, r.label.empty() ? type_name(r.type) : r.label);
      os << "\",\"cat\":\"blocked\",\"pid\":" << r.domain.value
         << ",\"tid\":" << r.stream.value << ",\"ts\":" << r.enqueue_s * 1e6
         << ",\"dur\":" << (r.dispatch_s - r.enqueue_s) * 1e6 << "}";
    }
  }
  // Out-of-core instants: one marker per evict/refetch on the domain's
  // process row (tid 0 keeps them off the stream rows).
  for (const OocEvent& e : ooc_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"ph\":\"i\",\"s\":\"p\",\"name\":\"";
    write_escaped(os, e.kind);
    os << " buf " << e.buffer.value << "\",\"cat\":\"ooc\",\"pid\":"
       << e.domain.value << ",\"tid\":0,\"ts\":" << e.when_s * 1e6
       << ",\"args\":{\"buffer\":" << e.buffer.value
       << ",\"bytes\":" << e.bytes << "}}";
  }
  os << "\n]\n";
}

}  // namespace hs
