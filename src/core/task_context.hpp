#pragma once

// TaskContext: what a compute task body sees when it runs at a stream's
// sink endpoint.
//
// The context supplies (1) proxy-to-local address translation, so task
// code is written purely against host proxy addresses (§IV: "only the
// host proxy address is used in the application's source code"), and
// (2) team-parallel execution, so "the user's task naturally expands to
// use all of the resources given to a stream" (§II) without the task
// knowing the team width.

#include <functional>

#include "common/status.hpp"
#include "core/types.hpp"

namespace hs {

class Runtime;
class Team;
struct ActionRecord;

class TaskContext {
 public:
  /// Built by executors; `team` may be null (sim backend), in which case
  /// parallel_for degrades to a serial loop. `action` is the record being
  /// executed (null only in synthetic contexts); it backs the
  /// operand-indexed accessors below.
  TaskContext(Runtime& runtime, DomainId domain, Team* team,
              std::size_t team_width, const ActionRecord* action = nullptr)
      : runtime_(runtime),
        domain_(domain),
        team_(team),
        team_width_(team_width),
        action_(action) {}

  [[nodiscard]] DomainId domain() const noexcept { return domain_; }

  /// Number of hardware threads assigned to this stream.
  [[nodiscard]] std::size_t team_size() const noexcept { return team_width_; }

  /// Translates a proxy pointer into the sink domain's incarnation of its
  /// buffer. `len` bytes starting at `proxy` must lie inside one buffer.
  [[nodiscard]] void* translate(const void* proxy, std::size_t len) const;

  /// Typed translation convenience.
  template <class T>
  [[nodiscard]] T* translate(const T* proxy, std::size_t count) const {
    return static_cast<T*>(translate(static_cast<const void*>(proxy),
                                     count * sizeof(T)));
  }

  /// Runs body(i) for i in [0, count) across the stream's team.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body) const;

  /// Number of declared operands of the executing action.
  [[nodiscard]] std::size_t operand_count() const noexcept;

  /// Sink-local address of declared operand `index`. Unlike translate(),
  /// this resolves through the action's *current* operand list, so task
  /// bodies written against it keep working when a replayed graph rebinds
  /// buffers (graph/replay.hpp) — captured proxy pointers would not.
  [[nodiscard]] void* operand_local(std::size_t index) const;

  /// Typed operand access convenience.
  template <class T>
  [[nodiscard]] T* operand_as(std::size_t index) const {
    return static_cast<T*>(operand_local(index));
  }

 private:
  Runtime& runtime_;
  DomainId domain_;
  Team* team_;
  std::size_t team_width_;
  const ActionRecord* action_ = nullptr;
};

}  // namespace hs
