#pragma once

// TaskContext: what a compute task body sees when it runs at a stream's
// sink endpoint.
//
// The context supplies (1) proxy-to-local address translation, so task
// code is written purely against host proxy addresses (§IV: "only the
// host proxy address is used in the application's source code"), and
// (2) team-parallel execution, so "the user's task naturally expands to
// use all of the resources given to a stream" (§II) without the task
// knowing the team width.

#include <functional>

#include "common/status.hpp"
#include "core/types.hpp"

namespace hs {

class Runtime;
class Team;

class TaskContext {
 public:
  /// Built by executors; `team` may be null (sim backend), in which case
  /// parallel_for degrades to a serial loop.
  TaskContext(Runtime& runtime, DomainId domain, Team* team,
              std::size_t team_width)
      : runtime_(runtime),
        domain_(domain),
        team_(team),
        team_width_(team_width) {}

  [[nodiscard]] DomainId domain() const noexcept { return domain_; }

  /// Number of hardware threads assigned to this stream.
  [[nodiscard]] std::size_t team_size() const noexcept { return team_width_; }

  /// Translates a proxy pointer into the sink domain's incarnation of its
  /// buffer. `len` bytes starting at `proxy` must lie inside one buffer.
  [[nodiscard]] void* translate(const void* proxy, std::size_t len) const;

  /// Typed translation convenience.
  template <class T>
  [[nodiscard]] T* translate(const T* proxy, std::size_t count) const {
    return static_cast<T*>(translate(static_cast<const void*>(proxy),
                                     count * sizeof(T)));
  }

  /// Runs body(i) for i in [0, count) across the stream's team.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body) const;

 private:
  Runtime& runtime_;
  DomainId domain_;
  Team* team_;
  std::size_t team_width_;
};

}  // namespace hs
