#include "core/memory_governor.hpp"

namespace hs {

std::optional<BufferId> MemoryGovernor::pick_victim(DomainId domain,
                                                    MemKind kind) const {
  std::optional<BufferId> victim;
  std::uint64_t oldest = 0;
  const auto begin = residents_.lower_bound({domain.value, 0});
  const auto end = residents_.upper_bound({domain.value, UINT32_MAX});
  for (auto it = begin; it != end; ++it) {
    const Resident& r = it->second;
    if (r.kind != kind || r.pins != 0) {
      continue;
    }
    if (!victim.has_value() || r.last_use < oldest) {
      victim = BufferId{it->first.second};
      oldest = r.last_use;
    }
  }
  return victim;
}

bool MemoryGovernor::has_external_pins(
    DomainId domain, MemKind kind,
    const std::vector<std::pair<BufferId, DomainId>>& ours) const {
  // Count our own pins per buffer in this domain; a resident whose pin
  // count exceeds ours is held by someone else.
  std::map<std::uint32_t, std::uint32_t> mine;
  for (const auto& [buffer, pin_domain] : ours) {
    if (pin_domain == domain) {
      ++mine[buffer.value];
    }
  }
  const auto begin = residents_.lower_bound({domain.value, 0});
  const auto end = residents_.upper_bound({domain.value, UINT32_MAX});
  for (auto it = begin; it != end; ++it) {
    const Resident& r = it->second;
    if (r.kind != kind || r.pins == 0) {
      continue;
    }
    const auto own = mine.find(it->first.second);
    const std::uint32_t owned = own == mine.end() ? 0 : own->second;
    if (r.pins > owned) {
      return true;
    }
  }
  return false;
}

}  // namespace hs
