#pragma once

// Identifier and enumeration types of the hetstream core runtime.
//
// hStreams exposes streams "represented by an integer in contrast to the
// CUDA opaque pointers" (§IV); all our handles are small integer ids with
// distinct types so they cannot be confused at compile time.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace hs {

namespace detail {
/// CRTP-free strongly-typed id: a wrapped integer comparable within type.
template <class Tag>
struct Id {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = 0xffffffff;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalid;
  }
  friend constexpr auto operator<=>(Id, Id) = default;
};
}  // namespace detail

using DomainId = detail::Id<struct DomainTag>;
using StreamId = detail::Id<struct StreamTag>;
using BufferId = detail::Id<struct BufferTag>;
using EventId = detail::Id<struct EventTag>;
using ActionId = detail::Id<struct ActionTag>;

/// The host domain is always id 0 (hStreams' HSTR_SRC_DOMAIN equivalent).
inline constexpr DomainId kHostDomain{0};

/// Kinds of computing domains (§II: host CPU, Knights-family coprocessor,
/// node across the fabric, GPU, or a core subset sharing a memory
/// controller).
enum class DomainKind {
  host,
  coprocessor,  ///< emulated MIC card
  gpu,          ///< emulated discrete GPU (used by the CUDA-like baseline)
  remote_node,  ///< emulated node reached over fabric
};

/// Memory kinds a buffer may be bound to (§IV: "allocation for different
/// memory types, e.g. for high-bandwidth or persistent memory").
enum class MemKind { ddr, hbm, persistent };

/// Operand access declaration, the basis of dependence analysis (§II).
enum class Access { in, out, inout };

[[nodiscard]] constexpr bool writes(Access a) noexcept {
  return a != Access::in;
}

/// Stream ordering policy.
///
/// relaxed_fifo is the hStreams semantic: FIFO *semantics* with
/// out-of-order execution of actions whose memory operands do not
/// overlap. strict_fifo is the CUDA Streams semantic the paper compares
/// against: every action waits for all earlier actions in its stream.
enum class OrderPolicy { relaxed_fifo, strict_fifo };

/// Action kinds that can be enqueued into a stream (§II: "compute tasks,
/// data transfers, and synchronizations"; `alloc` is the asynchronous
/// sink-side allocation the paper's §VII announces as forthcoming —
/// "making MIC-side memory allocation asynchronous is a bottleneck").
enum class ActionType { compute, transfer, event_wait, event_signal, alloc };

/// Transfer direction relative to the stream's endpoints: the *source*
/// endpoint is where actions are issued (host), the *sink* is where they
/// execute (the stream's domain).
enum class XferDir { src_to_sink, sink_to_src };

}  // namespace hs

template <class Tag>
struct std::hash<hs::detail::Id<Tag>> {
  std::size_t operator()(hs::detail::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
