#pragma once

// Domains: "a set of computing and storage resources which share coherent
// memory and have some degree of locality" (§II). Domains are
// discoverable and enumerable; each carries properties such as the
// number, kind and speed of hardware threads and the amount of each kind
// of memory.

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hs {

/// Static description of one domain, provided at platform construction.
struct DomainDesc {
  std::string name = "host";
  DomainKind kind = DomainKind::host;
  std::size_t hw_threads = 1;    ///< worker threads backing this domain
  double clock_ghz = 1.0;        ///< informational; sim models consume it
  std::map<MemKind, std::size_t> memory_bytes = {
      {MemKind::ddr, std::size_t{16} << 30}};
};

/// A realized domain within a runtime.
class Domain {
 public:
  Domain(DomainId id, DomainDesc desc) : id_(id), desc_(std::move(desc)) {}

  [[nodiscard]] DomainId id() const noexcept { return id_; }
  [[nodiscard]] const DomainDesc& desc() const noexcept { return desc_; }
  [[nodiscard]] bool is_host() const noexcept { return id_ == kHostDomain; }
  [[nodiscard]] std::size_t hw_threads() const noexcept {
    return desc_.hw_threads;
  }

  /// False once the device dropped off the bus (Runtime::mark_domain_lost).
  /// A dead domain refuses new streams and actions with Errc::device_lost.
  /// Atomic so enqueue fast paths can check liveness without the runtime
  /// lock; the loss transition itself is serialized by Runtime.
  [[nodiscard]] bool alive() const noexcept {
    return alive_.load(std::memory_order_acquire);
  }
  void mark_lost() noexcept { alive_.store(false, std::memory_order_release); }

 private:
  DomainId id_;
  DomainDesc desc_;
  std::atomic<bool> alive_{true};
};

/// A whole platform: the host plus zero or more device domains.
/// Domain 0 must be the host.
struct PlatformDesc {
  std::vector<DomainDesc> domains;

  [[nodiscard]] static PlatformDesc host_only(std::size_t hw_threads = 4) {
    PlatformDesc p;
    p.domains.push_back(DomainDesc{.name = "host",
                                   .kind = DomainKind::host,
                                   .hw_threads = hw_threads});
    return p;
  }

  /// Host plus `cards` identical coprocessor domains.
  [[nodiscard]] static PlatformDesc host_plus_cards(
      std::size_t host_threads, std::size_t cards, std::size_t card_threads) {
    PlatformDesc p = host_only(host_threads);
    for (std::size_t i = 0; i < cards; ++i) {
      p.domains.push_back(DomainDesc{.name = "mic" + std::to_string(i),
                                     .kind = DomainKind::coprocessor,
                                     .hw_threads = card_threads});
    }
    return p;
  }
};

}  // namespace hs
