#include "core/buffer.hpp"

namespace hs {

BufferId BufferTable::create(void* base, std::size_t size, BufferProps props) {
  auto* byte_base = static_cast<std::byte*>(base);
  // Reject overlap with an existing buffer: proxy space is a partition.
  auto next = by_base_.upper_bound(byte_base);
  if (next != by_base_.end()) {
    require(byte_base + size <= next->first,
            "buffer overlaps an existing buffer", Errc::invalid_argument);
  }
  if (next != by_base_.begin()) {
    const auto& prev = *std::prev(next);
    require(prev.first + prev.second->size() <= byte_base,
            "buffer overlaps an existing buffer", Errc::invalid_argument);
  }

  const BufferId id{next_id_++};
  auto buffer = std::make_unique<Buffer>(id, byte_base, size, props);
  buffers_[id] = buffer.get();
  by_base_[byte_base] = std::move(buffer);
  return id;
}

void BufferTable::destroy(BufferId id) {
  const auto it = buffers_.find(id);
  require(it != buffers_.end(), "destroy of unknown buffer", Errc::not_found);
  const std::byte* base = it->second->proxy_base();
  buffers_.erase(it);
  by_base_.erase(base);
}

Buffer& BufferTable::get(BufferId id) {
  const auto it = buffers_.find(id);
  require(it != buffers_.end(), "unknown buffer id", Errc::not_found);
  return *it->second;
}

const Buffer& BufferTable::get(BufferId id) const {
  const auto it = buffers_.find(id);
  require(it != buffers_.end(), "unknown buffer id", Errc::not_found);
  return *it->second;
}

Buffer& BufferTable::find_containing(const void* ptr, std::size_t len) {
  require(ptr != nullptr && len > 0, "empty operand range");
  const auto* p = static_cast<const std::byte*>(ptr);
  auto it = by_base_.upper_bound(p);
  require(it != by_base_.begin(),
          "operand does not fall within any buffer", Errc::not_found);
  Buffer& buf = *std::prev(it)->second;
  require(buf.contains(p), "operand does not fall within any buffer",
          Errc::not_found);
  require(buf.offset_of(p) + len <= buf.size(),
          "operand range escapes its buffer", Errc::out_of_range);
  return buf;
}

Operand BufferTable::resolve(const void* ptr, std::size_t len, Access access) {
  Buffer& buf = find_containing(ptr, len);
  return Operand{buf.id(), buf.offset_of(ptr), len, access};
}

}  // namespace hs
