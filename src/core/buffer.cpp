#include "core/buffer.hpp"

namespace hs {

BufferId BufferTable::create(void* base, std::size_t size, BufferProps props) {
  auto* byte_base = static_cast<std::byte*>(base);
  // Reject overlap with an existing buffer: proxy space is a partition.
  auto next = by_base_.upper_bound(byte_base);
  if (next != by_base_.end()) {
    require(byte_base + size <= next->first,
            "buffer overlaps an existing buffer", Errc::invalid_argument);
  }
  if (next != by_base_.begin()) {
    const auto& prev = *std::prev(next);
    require(prev.first + prev.second->size() <= byte_base,
            "buffer overlaps an existing buffer", Errc::invalid_argument);
  }

  const BufferId id{next_id_++};
  auto buffer = std::make_unique<Buffer>(id, byte_base, size, props);
  buffers_[id] = buffer.get();
  by_base_[byte_base] = std::move(buffer);
  return id;
}

void BufferTable::destroy(BufferId id) {
  const auto it = buffers_.find(id);
  require(it != buffers_.end(), "destroy of unknown buffer", Errc::not_found);
  const std::byte* base = it->second->proxy_base();
  buffers_.erase(it);
  by_base_.erase(base);
}

Buffer& BufferTable::get(BufferId id) {
  const auto it = buffers_.find(id);
  require(it != buffers_.end(), "unknown buffer id", Errc::not_found);
  return *it->second;
}

const Buffer& BufferTable::get(BufferId id) const {
  const auto it = buffers_.find(id);
  require(it != buffers_.end(), "unknown buffer id", Errc::not_found);
  return *it->second;
}

Buffer& BufferTable::find_containing(const void* ptr, std::size_t len) {
  require(ptr != nullptr && len > 0, "empty operand range");
  const auto* p = static_cast<const std::byte*>(ptr);
  auto it = by_base_.upper_bound(p);
  require(it != by_base_.begin(),
          "operand does not fall within any buffer", Errc::not_found);
  Buffer& buf = *std::prev(it)->second;
  require(buf.contains(p), "operand does not fall within any buffer",
          Errc::not_found);
  require(buf.offset_of(p) + len <= buf.size(),
          "operand range escapes its buffer", Errc::out_of_range);
  return buf;
}

Operand BufferTable::resolve(const void* ptr, std::size_t len, Access access) {
  Buffer& buf = find_containing(ptr, len);
  return Operand{buf.id(), buf.offset_of(ptr), len, access};
}

// --- BufferDepIndex ----------------------------------------------------------

void BufferDepIndex::split_at(std::size_t at) {
  auto it = segments_.upper_bound(at);
  if (it == segments_.begin()) {
    return;
  }
  --it;
  if (it->first < at && at < it->second.end) {
    // Clone the covering segment's lists into the right half; entries
    // spanning the boundary must stay discoverable from both sides.
    Segment right;
    right.end = it->second.end;
    right.writers = it->second.writers;
    right.readers = it->second.readers;
    it->second.end = at;
    segments_.emplace(at, std::move(right));
  }
}

void BufferDepIndex::insert(const Operand& op, ActionId action,
                            std::uint64_t seq) {
  const std::size_t begin = op.offset;
  const std::size_t end = op.offset + op.length;
  require(end > begin, "dep index insert of an empty range", Errc::internal);
  const DepUse use{action, seq, begin, end, writes(op.access)};

  split_at(begin);
  split_at(end);

  // Walk [begin, end): append the use to covered segments, create fresh
  // segments over the gaps.
  std::size_t cursor = begin;
  auto it = segments_.lower_bound(begin);
  while (cursor < end) {
    if (it == segments_.end() || it->first >= end) {
      Segment seg;
      seg.end = end;
      (use.write ? seg.writers : seg.readers).push_back(use);
      segments_.emplace(cursor, std::move(seg));
      break;
    }
    if (it->first > cursor) {
      Segment seg;
      seg.end = it->first;
      (use.write ? seg.writers : seg.readers).push_back(use);
      segments_.emplace(cursor, std::move(seg));
    }
    (use.write ? it->second.writers : it->second.readers).push_back(use);
    cursor = it->second.end;
    ++it;
  }
}

std::size_t BufferDepIndex::collect(const Operand& op,
                                    std::vector<DepUse>& out) const {
  const std::size_t begin = op.offset;
  const std::size_t end = op.offset + op.length;
  const bool write = writes(op.access);
  std::size_t steps = 0;

  auto it = segments_.upper_bound(begin);
  if (it != segments_.begin()) {
    --it;  // the previous segment may reach into the queried range
  }
  for (; it != segments_.end() && it->first < end; ++it) {
    ++steps;
    if (it->second.end <= begin) {
      continue;
    }
    // Precise filter: the segment only nominates candidates; the strict
    // byte-range overlap keeps the edge set identical to the pairwise
    // scan (an entry split across segments is also deduped upstream).
    const auto overlap = [begin, end](const DepUse& use) {
      return use.begin < end && begin < use.end;
    };
    for (const DepUse& use : it->second.writers) {
      ++steps;
      if (overlap(use)) {
        out.push_back(use);
      }
    }
    if (write) {
      for (const DepUse& use : it->second.readers) {
        ++steps;
        if (overlap(use)) {
          out.push_back(use);
        }
      }
    }
  }
  return steps;
}

void BufferDepIndex::erase(const Operand& op, ActionId action) {
  const std::size_t begin = op.offset;
  const std::size_t end = op.offset + op.length;
  auto it = segments_.upper_bound(begin);
  if (it != segments_.begin()) {
    --it;
  }
  while (it != segments_.end() && it->first < end) {
    if (it->second.end <= begin) {
      ++it;
      continue;
    }
    const auto drop = [action](std::vector<DepUse>& uses) {
      std::erase_if(uses, [action](const DepUse& u) {
        return u.action == action;
      });
    };
    drop(it->second.writers);
    drop(it->second.readers);
    if (it->second.writers.empty() && it->second.readers.empty()) {
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- StreamDepIndex ----------------------------------------------------------

void StreamDepIndex::insert(const Operand& op, ActionId action,
                            std::uint64_t seq) {
  buffers_[op.buffer].insert(op, action, seq);
}

std::size_t StreamDepIndex::collect(const Operand& op,
                                    std::vector<DepUse>& out) const {
  const auto it = buffers_.find(op.buffer);
  if (it == buffers_.end()) {
    return 1;
  }
  return 1 + it->second.collect(op, out);
}

void StreamDepIndex::erase(const Operand& op, ActionId action) {
  const auto it = buffers_.find(op.buffer);
  if (it == buffers_.end()) {
    return;
  }
  it->second.erase(op, action);
  if (it->second.empty()) {
    buffers_.erase(it);
  }
}

}  // namespace hs
