#pragma once

// Completion events.
//
// Every enqueued action can report completion through an Event. Events
// are the only cross-stream and host-to-stream dependence mechanism
// (§II: "There are no dependences implied among actions in different
// streams, or between actions in streams and the source; those must be
// explicitly specified using synchronization actions.").
//
// hStreams "adds the possibility of waiting on a set of events and being
// signaled when one or all the events are finished" (§IV) — see
// Runtime::event_wait_host with WaitMode.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

#include "core/types.hpp"

namespace hs {

/// Shared state of one event. Fire-once; waiters registered after firing
/// run immediately.
class EventState {
 public:
  /// Marks the event fired and returns the callbacks to invoke. The
  /// caller invokes them *outside* any runtime lock.
  [[nodiscard]] std::vector<std::function<void()>> fire() {
    std::vector<std::function<void()>> callbacks;
    {
      const std::scoped_lock lock(mutex_);
      if (fired_) {
        return {};
      }
      fired_ = true;
      callbacks.swap(callbacks_);
    }
    cv_.notify_all();
    return callbacks;
  }

  [[nodiscard]] bool fired() const {
    const std::scoped_lock lock(mutex_);
    return fired_;
  }

  /// Registers `fn` to run when the event fires; runs it inline if the
  /// event already fired. Returns true if run inline.
  bool on_fire(std::function<void()> fn) {
    {
      const std::scoped_lock lock(mutex_);
      if (!fired_) {
        callbacks_.push_back(std::move(fn));
        return false;
      }
    }
    fn();
    return true;
  }

  /// Blocks the calling (host) thread until fired. Only valid with a
  /// backend that makes progress on other threads (threaded executor).
  void wait_blocking() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return fired_; });
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool fired_ = false;
  std::vector<std::function<void()>> callbacks_;
};

/// Host-side wait flavor over a set of events.
enum class WaitMode { all, any };

}  // namespace hs
