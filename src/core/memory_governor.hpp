#pragma once

// Out-of-core residency bookkeeping: which buffer incarnations occupy
// each (domain, mem-kind) budget, how many in-flight actions pin each
// one, and which idle incarnation an over-budget admission should spill
// next (LRU). Pure ledger — no locking (Runtime::gov_mu_ serializes
// every call) and no data movement (Runtime::evict_one_locked does the
// validity-map-minimized writeback).

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace hs {

class MemoryGovernor {
 public:
  struct Resident {
    std::size_t bytes = 0;
    MemKind kind = MemKind::ddr;
    std::uint32_t pins = 0;       ///< in-flight actions holding this operand
    std::uint64_t last_use = 0;   ///< governor tick of the last touch (LRU)
  };

  [[nodiscard]] bool resident(DomainId domain, BufferId buffer) const {
    return residents_.count(key(domain, buffer)) != 0;
  }

  /// Inserts (domain, buffer) with `pins` initial pins and charges its
  /// bytes against the (domain, kind) ledger. Pre-condition: not already
  /// resident (callers check under the governor lock).
  void admit(DomainId domain, BufferId buffer, MemKind kind,
             std::size_t bytes, std::uint32_t pins) {
    Resident r;
    r.bytes = bytes;
    r.kind = kind;
    r.pins = pins;
    r.last_use = ++tick_;
    residents_.emplace(key(domain, buffer), r);
    used_[{domain.value, kind}] += bytes;
  }

  /// Erases (domain, buffer) and refunds its ledger charge. No-op when
  /// absent, so destroy/deinstantiate paths can call it unconditionally.
  void release(DomainId domain, BufferId buffer) {
    const auto it = residents_.find(key(domain, buffer));
    if (it == residents_.end()) {
      return;
    }
    used_[{domain.value, it->second.kind}] -= it->second.bytes;
    residents_.erase(it);
  }

  /// Marks (domain, buffer) in use by one more in-flight action (also a
  /// recency touch). Pre-condition: resident.
  void pin(DomainId domain, BufferId buffer) {
    Resident& r = residents_.at(key(domain, buffer));
    ++r.pins;
    r.last_use = ++tick_;
  }

  /// Releases one pin. Tolerates a missing entry (the buffer may have
  /// been destroyed while the action was in flight).
  void unpin(DomainId domain, BufferId buffer) {
    const auto it = residents_.find(key(domain, buffer));
    if (it != residents_.end() && it->second.pins > 0) {
      --it->second.pins;
    }
  }

  /// Recency touch without a pin (explicit re-instantiation of a
  /// resident buffer).
  void touch(DomainId domain, BufferId buffer) {
    const auto it = residents_.find(key(domain, buffer));
    if (it != residents_.end()) {
      it->second.last_use = ++tick_;
    }
  }

  [[nodiscard]] std::size_t used(DomainId domain, MemKind kind) const {
    const auto it = used_.find({domain.value, kind});
    return it == used_.end() ? 0 : it->second;
  }

  /// Least-recently-used unpinned incarnation charged against
  /// (domain, kind); nullopt when every resident incarnation is pinned.
  [[nodiscard]] std::optional<BufferId> pick_victim(DomainId domain,
                                                    MemKind kind) const;

  /// True when some pinned resident charged against (domain, kind)
  /// holds pins beyond those listed in `ours` — i.e. another in-flight
  /// action will release capacity later, so a dispatch that cannot
  /// admit its operands now can park and retry instead of failing.
  [[nodiscard]] bool has_external_pins(
      DomainId domain, MemKind kind,
      const std::vector<std::pair<BufferId, DomainId>>& ours) const;

  /// Bytes charged for (domain, buffer); 0 when absent (eviction
  /// notification payloads).
  [[nodiscard]] std::size_t bytes_of(DomainId domain, BufferId buffer) const {
    const auto it = residents_.find(key(domain, buffer));
    return it == residents_.end() ? 0 : it->second.bytes;
  }

 private:
  /// (domain, buffer) — domain-major so a domain's residents are
  /// contiguous for victim scans.
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  static Key key(DomainId domain, BufferId buffer) {
    return {domain.value, buffer.value};
  }

  std::map<Key, Resident> residents_;
  std::map<std::pair<std::uint32_t, MemKind>, std::size_t> used_;
  std::uint64_t tick_ = 0;
};

}  // namespace hs
