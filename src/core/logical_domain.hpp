#pragma once

// Logical domains: tuner-defined subsets of physical domains.
//
// §II: a domain can be "a subset of cores that share a memory
// controller", and "the ability of tuners to define their own domains
// allows performance to be tuned for locality and enables portability".
// §IV contrasts hStreams with LIBXSTREAM precisely on this "distinction
// between logical and physical abstractions".
//
// A LogicalDomain is (physical domain, CPU-mask slice). Streams are
// created against logical domains with *relative* masks — a stream that
// uses "threads 0-3 of logical domain 2" keeps working when the tuner
// re-maps logical domain 2 from one socket to another, which is the
// separation-of-concerns story: application code names logical domains;
// only the partitioner changes per machine.

#include <optional>
#include <vector>

#include "core/runtime.hpp"

namespace hs {

using LogicalDomainId = detail::Id<struct LogicalDomainTag>;

class DomainPartitioner {
 public:
  explicit DomainPartitioner(Runtime& runtime) : runtime_(runtime) {}

  /// Defines a logical domain over `mask` of `physical`. Masks of
  /// different logical domains may overlap (a tuner may deliberately
  /// share resources, §II).
  LogicalDomainId define(DomainId physical, const CpuMask& mask) {
    require(!mask.empty(), "logical domain mask must be non-empty");
    const auto cpus = mask.cpus();
    require(cpus.back() < runtime_.domain(physical).hw_threads(),
            "logical domain mask exceeds physical threads");
    const LogicalDomainId id{static_cast<std::uint32_t>(entries_.size())};
    entries_.push_back(Entry{physical, mask});
    return id;
  }

  /// Splits a physical domain evenly into `parts` logical domains (e.g.
  /// one per NUMA node / memory controller).
  std::vector<LogicalDomainId> split_evenly(DomainId physical,
                                            std::size_t parts) {
    std::vector<LogicalDomainId> out;
    const std::size_t threads = runtime_.domain(physical).hw_threads();
    for (const CpuMask& mask : CpuMask::partition(threads, parts)) {
      out.push_back(define(physical, mask));
    }
    return out;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    return entries_.size();
  }

  /// Fault-aware choice among logical domains: returns the first whose
  /// physical link the runtime considers healthy, preferring `preferred`
  /// and scanning the rest in definition order. Falls back on degraded
  /// (but alive) links the same way Runtime::pick_healthy does, so a
  /// caller always gets a usable logical domain while any physical
  /// domain survives.
  [[nodiscard]] LogicalDomainId pick_healthy(LogicalDomainId preferred) const {
    (void)entry(preferred);  // range check
    std::vector<DomainId> candidates;
    candidates.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::size_t at = (preferred.value + i) % entries_.size();
      candidates.push_back(entries_[at].physical);
    }
    const DomainId picked = runtime_.pick_healthy(candidates);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::size_t at = (preferred.value + i) % entries_.size();
      if (entries_[at].physical == picked) {
        return LogicalDomainId{static_cast<std::uint32_t>(at)};
      }
    }
    return preferred;  // unreachable: picked came from candidates
  }
  [[nodiscard]] DomainId physical(LogicalDomainId id) const {
    return entry(id).physical;
  }
  [[nodiscard]] const CpuMask& mask(LogicalDomainId id) const {
    return entry(id).mask;
  }
  [[nodiscard]] std::size_t width(LogicalDomainId id) const {
    return entry(id).mask.count();
  }

  /// Creates a stream on a logical domain. `relative` indexes the
  /// logical domain's threads (0 = its first CPU); empty = the whole
  /// logical domain. The mask is translated into physical indices, so
  /// application code never mentions physical CPUs.
  StreamId stream_create(LogicalDomainId id,
                         std::optional<CpuMask> relative = std::nullopt,
                         std::optional<OrderPolicy> policy = std::nullopt) {
    const Entry& e = entry(id);
    const auto physical_cpus = e.mask.cpus();
    CpuMask translated;
    if (relative.has_value()) {
      for (const std::size_t rel : relative->cpus()) {
        require(rel < physical_cpus.size(),
                "relative mask exceeds logical domain width",
                Errc::out_of_range);
        translated.set(physical_cpus[rel]);
      }
    } else {
      translated = e.mask;
    }
    return runtime_.stream_create(e.physical, translated, policy);
  }

 private:
  struct Entry {
    DomainId physical;
    CpuMask mask;
  };

  [[nodiscard]] const Entry& entry(LogicalDomainId id) const {
    require(id.value < entries_.size(), "unknown logical domain",
            Errc::not_found);
    return entries_[id.value];
  }

  Runtime& runtime_;
  std::vector<Entry> entries_;
};

}  // namespace hs
