#include "core/threaded_executor.hpp"

#include <chrono>
#include <cstring>
#include <vector>

#include "core/runtime.hpp"

namespace hs {

ThreadedExecutor::ThreadedExecutor(ThreadedExecutorConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  require(config_.max_workers_per_domain > 0, "need at least one worker");
  require(config_.transfer_workers > 0, "need at least one copier");
}

ThreadedExecutor::~ThreadedExecutor() = default;

void ThreadedExecutor::attach(Runtime& runtime) {
  runtime_ = &runtime;
  copiers_ = std::make_unique<ThreadPool>(config_.transfer_workers);
  retry_timer_ = std::make_unique<RetryTimer>();
}

// --- RetryTimer --------------------------------------------------------------

ThreadedExecutor::RetryTimer::~RetryTimer() {
  std::vector<std::function<void()>> leftovers;
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
    // Deadlines no longer matter: hand every pending retry back now so
    // held resources (in-flight claims, completion callbacks) unwind
    // through the normal attempt path.
    for (auto& [deadline, fn] : pending_) {
      leftovers.push_back(std::move(fn));
    }
    pending_.clear();
    cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  for (auto& fn : leftovers) {
    fn();
  }
}

void ThreadedExecutor::RetryTimer::schedule_after(double delay_s,
                                                  std::function<void()> fn) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(delay_s));
  {
    const std::scoped_lock lock(mutex_);
    require(!stop_, "RetryTimer used after shutdown", Errc::internal);
    pending_.emplace(deadline, std::move(fn));
    if (!thread_.joinable()) {
      thread_ = std::thread([this] { timer_main(); });
    }
  }
  cv_.notify_all();
}

void ThreadedExecutor::RetryTimer::timer_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stop_) {
      return;
    }
    if (pending_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    const auto next = pending_.begin()->first;
    if (Clock::now() < next) {
      cv_.wait_until(lock, next);
      continue;
    }
    auto fn = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    lock.unlock();
    fn();
    lock.lock();
  }
}

double ThreadedExecutor::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

void ThreadedExecutor::begin_work() {
  const std::scoped_lock lock(work_mutex_);
  ++in_flight_;
}

void ThreadedExecutor::end_work() {
  {
    const std::scoped_lock lock(work_mutex_);
    --in_flight_;
  }
  work_cv_.notify_all();
}

void ThreadedExecutor::quiesce() {
  std::unique_lock lock(work_mutex_);
  work_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadedExecutor::domain_pool(DomainId domain) {
  const std::scoped_lock lock(setup_mutex_);
  auto it = pools_.find(domain);
  if (it == pools_.end()) {
    const std::size_t workers =
        std::min(runtime_->domain(domain).hw_threads(),
                 config_.max_workers_per_domain);
    it = pools_.emplace(domain, std::make_unique<ThreadPool>(workers)).first;
  }
  return *it->second;
}

ThreadedExecutor::TeamEntry& ThreadedExecutor::stream_team(StreamId stream) {
  // Resolve pool outside setup_mutex_ to avoid self-deadlock.
  const DomainId domain = runtime_->stream_domain(stream);
  ThreadPool& pool = domain_pool(domain);

  const std::scoped_lock lock(setup_mutex_);
  auto it = teams_.find(stream);
  if (it == teams_.end()) {
    const CpuMask logical = runtime_->stream_mask(stream);
    // Fold the logical mask onto the (possibly smaller) physical pool.
    CpuMask physical;
    for (const std::size_t cpu : logical.cpus()) {
      physical.set(cpu % pool.worker_count());
    }
    TeamEntry entry;
    entry.team = std::make_unique<Team>(pool, physical);
    entry.logical_width = logical.count();
    it = teams_.emplace(stream, std::move(entry)).first;
  }
  return it->second;
}

void ThreadedExecutor::execute(const std::shared_ptr<ActionRecord>& action,
                               CompletionFn done) {
  switch (action->type) {
    case ActionType::compute:
      run_compute(action, std::move(done));
      return;
    case ActionType::transfer:
      run_transfer(action, std::move(done));
      return;
    case ActionType::event_wait:
      // Completes when the event fires; no thread is parked (§IV: "This
      // can save CPU spinning time").
      action->wait_event->on_fire(std::move(done));
      return;
    case ActionType::event_signal:
      // The action's own completion event *is* the signal.
      done();
      return;
    case ActionType::alloc:
      // Incarnation storage materializes lazily on first touch; the
      // wall-clock cost of the reservation itself is negligible here.
      done();
      return;
  }
}

void ThreadedExecutor::run_compute(const std::shared_ptr<ActionRecord>& action,
                                   CompletionFn done) {
  TeamEntry& entry = stream_team(action->stream);
  const DomainId domain = runtime_->stream_domain(action->stream);
  begin_work();
  entry.team->run_async([this, action, domain, logical = entry.logical_width,
                         done = std::move(done)](Team& team) {
    if (!runtime_->domain_alive(domain)) {
      // The domain died after dispatch; the runtime already failed this
      // action (the claim makes `done` a no-op). Skip the body so a dead
      // device produces no further side effects.
      end_work();
      done();
      return;
    }
    TaskContext ctx(*runtime_, domain, &team, logical, action.get());
    try {
      action->compute.body(ctx);
    } catch (...) {
      // Contain sink-side failures: the worker must survive, and the
      // error surfaces at the caller's next synchronization point.
      runtime_->fail_action(action->id, std::current_exception());
      end_work();
      return;
    }
    end_work();
    done();
  });
}

void ThreadedExecutor::run_transfer(const std::shared_ptr<ActionRecord>& action,
                                    CompletionFn done) {
  const DomainId domain = runtime_->stream_domain(action->stream);
  if (domain == kHostDomain) {
    // Host-as-target stream: both incarnations alias the user memory;
    // "any transfers en-queued in host streams are aliased and optimized
    // away" (§V).
    done();
    return;
  }
  begin_work();
  if (action->transfer.peer != kHostDomain) {
    submit_peer_attempt(action, domain, 0, std::move(done));
  } else {
    submit_transfer_attempt(action, domain, 0, std::move(done));
  }
}

void ThreadedExecutor::submit_peer_attempt(
    std::shared_ptr<ActionRecord> action, DomainId sink, int failures,
    CompletionFn done) {
  const std::size_t copier =
      next_copier_.fetch_add(1, std::memory_order_relaxed) %
      copiers_->worker_count();
  copiers_->submit(copier, [this, copier, action = std::move(action), sink,
                            failures, done = std::move(done)]() mutable {
    if (!runtime_->domain_alive(sink)) {
      end_work();
      done();
      return;
    }
    const DomainId peer = action->transfer.peer;
    if (!runtime_->domain_alive(peer)) {
      // The source incarnation is gone; without its bytes the transfer
      // cannot run. Surfaces at the next sync like any device loss.
      end_work();
      runtime_->fail_action(
          action->id,
          std::make_exception_ptr(
              Error(Errc::device_lost,
                    "device->device transfer: source (peer) domain lost")));
      return;
    }
    // One fault decision per attempt, keyed by the sink domain and the
    // admission-time transfer id — chunking must not multiply the
    // injector's decision stream.
    const FaultDecision fault =
        runtime_->next_transfer_fault(sink, action->transfer_seq, failures);
    if (fault.kind == FaultKind::device_loss) {
      end_work();
      runtime_->mark_domain_lost(sink);
      return;
    }
    if (fault.kind == FaultKind::transient_error) {
      const RetryPolicy& retry = runtime_->retry_policy();
      ++failures;
      if (failures >= retry.max_attempts) {
        end_work();
        runtime_->mark_domain_lost(sink);
        return;
      }
      runtime_->note_transfer_retry(sink);
      retry_timer_->schedule_after(
          retry.backoff_seconds(failures),
          [this, action = std::move(action), sink, failures,
           done = std::move(done)]() mutable {
            submit_peer_attempt(std::move(action), sink, failures,
                                std::move(done));
          });
      return;
    }
    if (fault.kind == FaultKind::link_stall) {
      std::this_thread::sleep_for(std::chrono::duration<double>(fault.stall_s));
    }
    const TransferPayload t = action->transfer;
    const CoherenceConfig& coh = runtime_->config().coherence;
    const std::size_t chunk =
        (t.length > coh.pipeline_threshold && coh.pipeline_chunk > 0)
            ? std::min(coh.pipeline_chunk, t.length)
            : t.length;
    const std::size_t count = (t.length + chunk - 1) / chunk;
    if (count > 1) {
      runtime_->note_transfer_chunks(count);
    }
    struct Joint {
      std::atomic<std::size_t> remaining{0};
      CompletionFn done;
    };
    auto joint = std::make_shared<Joint>();
    joint->remaining.store(count, std::memory_order_relaxed);
    joint->done = std::move(done);
    // Per-copier FIFO keeps hop 2 serial and in chunk order; picking the
    // *next* copier makes the two hops run on different threads when the
    // pool has more than one, which is where the overlap comes from.
    const std::size_t hop2_copier = (copier + 1) % copiers_->worker_count();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t off = i * chunk;
      const std::size_t len = std::min(chunk, t.length - off);
      // Hop 1: peer -> host staging row, serial on this copier.
      runtime_->account_transfer_staging(len);
      if (runtime_->domain_alive(peer)) {
        std::byte* host = runtime_->buffer_local(t.buffer, kHostDomain,
                                                 t.offset + off, len);
        std::byte* src =
            runtime_->buffer_local(t.buffer, peer, t.offset + off, len);
        std::memcpy(host, src, len);
      }
      if (config_.time_dilation > 0.0) {
        const double modeled = runtime_->link_for(peer).transfer_seconds(len);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(modeled * config_.time_dilation));
      }
      // Hop 2: host staging row -> sink, chased chunk by chunk.
      copiers_->submit(hop2_copier, [this, action, sink, off, len, joint] {
        const TransferPayload& tp = action->transfer;
        if (runtime_->domain_alive(sink)) {
          std::byte* host = runtime_->buffer_local(tp.buffer, kHostDomain,
                                                   tp.offset + off, len);
          std::byte* dst =
              runtime_->buffer_local(tp.buffer, sink, tp.offset + off, len);
          std::memcpy(dst, host, len);
        }
        if (config_.time_dilation > 0.0) {
          const double modeled =
              runtime_->link_for(sink).transfer_seconds(len);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(modeled * config_.time_dilation));
        }
        if (joint->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          end_work();
          joint->done();
        }
      });
    }
  });
}

void ThreadedExecutor::submit_transfer_attempt(
    std::shared_ptr<ActionRecord> action, DomainId domain, int failures,
    CompletionFn done) {
  const std::size_t copier =
      next_copier_.fetch_add(1, std::memory_order_relaxed) %
      copiers_->worker_count();
  copiers_->submit(copier, [this, action = std::move(action), domain, failures,
                            done = std::move(done)]() mutable {
    if (!runtime_->domain_alive(domain)) {
      // Lost while we were queued or backing off; the runtime already
      // failed the action.
      end_work();
      done();
      return;
    }
    const FaultDecision fault = runtime_->next_transfer_fault(
        domain, action->transfer_seq, failures);
    if (fault.kind == FaultKind::device_loss) {
      end_work();
      runtime_->mark_domain_lost(domain);
      return;
    }
    if (fault.kind == FaultKind::transient_error) {
      const RetryPolicy& retry = runtime_->retry_policy();
      ++failures;
      if (failures >= retry.max_attempts) {
        // Retry budget exhausted: treat the link as gone for good.
        end_work();
        runtime_->mark_domain_lost(domain);
        return;
      }
      runtime_->note_transfer_retry(domain);
      // Requeue instead of sleeping: the copier stays free for other
      // domains' transfers while this one waits out its backoff (a
      // sleeping copier would head-of-line block everything sharing it).
      // The in-flight claim stays held so quiesce() outwaits the retry.
      retry_timer_->schedule_after(
          retry.backoff_seconds(failures),
          [this, action = std::move(action), domain, failures,
           done = std::move(done)]() mutable {
            submit_transfer_attempt(std::move(action), domain, failures,
                                    std::move(done));
          });
      return;
    }
    if (fault.kind == FaultKind::link_stall) {
      // The attempt succeeds, just late: pay the added latency in wall
      // time, then proceed with the copy.
      std::this_thread::sleep_for(std::chrono::duration<double>(fault.stall_s));
    }
    const TransferPayload& t = action->transfer;
    std::byte* host_side =
        runtime_->buffer_local(t.buffer, kHostDomain, t.offset, t.length);
    std::byte* sink_side =
        runtime_->buffer_local(t.buffer, domain, t.offset, t.length);
    runtime_->account_transfer_staging(t.length);
    if (t.dir == XferDir::src_to_sink) {
      std::memcpy(sink_side, host_side, t.length);
    } else {
      std::memcpy(host_side, sink_side, t.length);
    }
    if (config_.time_dilation > 0.0) {
      const double modeled =
          runtime_->link_for(domain).transfer_seconds(t.length);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(modeled * config_.time_dilation));
    }
    end_work();
    done();
  });
}

void ThreadedExecutor::wait(const std::function<bool()>& ready) {
  // mutex() is the cv rendezvous only: the predicate takes the stream /
  // buffer locks it needs itself. Completers enter an empty mutex()
  // critical section before notifying (Runtime::notify_waiters), so a
  // completion cannot slip wholly between our predicate check and the cv
  // wait — the lost-wakeup fence survives the sharded-locking refactor.
  std::unique_lock lock(runtime_->mutex());
  runtime_->completion_cv().wait(lock, ready);
}

bool ThreadedExecutor::wait_for(const std::function<bool()>& ready,
                                double timeout_s) {
  std::unique_lock lock(runtime_->mutex());
  return runtime_->completion_cv().wait_for(
      lock, std::chrono::duration<double>(timeout_s), ready);
}

}  // namespace hs
