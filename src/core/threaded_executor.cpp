#include "core/threaded_executor.hpp"

#include <chrono>
#include <cstring>

#include "core/runtime.hpp"

namespace hs {

ThreadedExecutor::ThreadedExecutor(ThreadedExecutorConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  require(config_.max_workers_per_domain > 0, "need at least one worker");
  require(config_.transfer_workers > 0, "need at least one copier");
}

ThreadedExecutor::~ThreadedExecutor() = default;

void ThreadedExecutor::attach(Runtime& runtime) {
  runtime_ = &runtime;
  copiers_ = std::make_unique<ThreadPool>(config_.transfer_workers);
}

double ThreadedExecutor::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

ThreadPool& ThreadedExecutor::domain_pool(DomainId domain) {
  const std::scoped_lock lock(setup_mutex_);
  auto it = pools_.find(domain);
  if (it == pools_.end()) {
    const std::size_t workers =
        std::min(runtime_->domain(domain).hw_threads(),
                 config_.max_workers_per_domain);
    it = pools_.emplace(domain, std::make_unique<ThreadPool>(workers)).first;
  }
  return *it->second;
}

ThreadedExecutor::TeamEntry& ThreadedExecutor::stream_team(StreamId stream) {
  // Resolve pool outside setup_mutex_ to avoid self-deadlock.
  const DomainId domain = runtime_->stream_domain(stream);
  ThreadPool& pool = domain_pool(domain);

  const std::scoped_lock lock(setup_mutex_);
  auto it = teams_.find(stream);
  if (it == teams_.end()) {
    const CpuMask logical = runtime_->stream_mask(stream);
    // Fold the logical mask onto the (possibly smaller) physical pool.
    CpuMask physical;
    for (const std::size_t cpu : logical.cpus()) {
      physical.set(cpu % pool.worker_count());
    }
    TeamEntry entry;
    entry.team = std::make_unique<Team>(pool, physical);
    entry.logical_width = logical.count();
    it = teams_.emplace(stream, std::move(entry)).first;
  }
  return it->second;
}

void ThreadedExecutor::execute(ActionRecord& action, CompletionFn done) {
  switch (action.type) {
    case ActionType::compute:
      run_compute(action, std::move(done));
      return;
    case ActionType::transfer:
      run_transfer(action, std::move(done));
      return;
    case ActionType::event_wait:
      // Completes when the event fires; no thread is parked (§IV: "This
      // can save CPU spinning time").
      action.wait_event->on_fire(std::move(done));
      return;
    case ActionType::event_signal:
      // The action's own completion event *is* the signal.
      done();
      return;
    case ActionType::alloc:
      // Incarnation storage materializes lazily on first touch; the
      // wall-clock cost of the reservation itself is negligible here.
      done();
      return;
  }
}

void ThreadedExecutor::run_compute(ActionRecord& action, CompletionFn done) {
  TeamEntry& entry = stream_team(action.stream);
  const DomainId domain = runtime_->stream_domain(action.stream);
  entry.team->run_async([this, &action, domain, logical = entry.logical_width,
                         done = std::move(done)](Team& team) {
    TaskContext ctx(*runtime_, domain, &team, logical);
    try {
      action.compute.body(ctx);
    } catch (...) {
      // Contain sink-side failures: the worker must survive, and the
      // error surfaces at the caller's next synchronization point.
      runtime_->fail_action(action.id, std::current_exception());
      return;
    }
    done();
  });
}

void ThreadedExecutor::run_transfer(ActionRecord& action, CompletionFn done) {
  const DomainId domain = runtime_->stream_domain(action.stream);
  if (domain == kHostDomain) {
    // Host-as-target stream: both incarnations alias the user memory;
    // "any transfers en-queued in host streams are aliased and optimized
    // away" (§V).
    done();
    return;
  }
  const std::size_t copier =
      next_copier_.fetch_add(1, std::memory_order_relaxed) %
      copiers_->worker_count();
  copiers_->submit(copier, [this, &action, domain, done = std::move(done)] {
    const TransferPayload& t = action.transfer;
    std::byte* host_side =
        runtime_->buffer_local(t.buffer, kHostDomain, t.offset, t.length);
    std::byte* sink_side =
        runtime_->buffer_local(t.buffer, domain, t.offset, t.length);
    runtime_->account_transfer_staging(t.length);
    if (t.dir == XferDir::src_to_sink) {
      std::memcpy(sink_side, host_side, t.length);
    } else {
      std::memcpy(host_side, sink_side, t.length);
    }
    if (config_.time_dilation > 0.0) {
      const double modeled =
          runtime_->link_for(domain).transfer_seconds(t.length);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(modeled * config_.time_dilation));
    }
    done();
  });
}

void ThreadedExecutor::wait(const std::function<bool()>& ready) {
  std::unique_lock lock(runtime_->mutex());
  runtime_->completion_cv().wait(lock, ready);
}

}  // namespace hs
