#pragma once

// Action records: the unit of work enqueued into a stream.

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/buffer.hpp"
#include "core/event.hpp"
#include "core/types.hpp"

namespace hs {

class TaskContext;

/// Compute payload: a task body plus the hints cost models consume.
struct ComputePayload {
  std::function<void(TaskContext&)> body;
  std::string kernel = "task";  ///< cost-model key ("dgemm", "dpotrf", ...)
  double flops = 0.0;           ///< work estimate for GF/s and sim timing
  /// Additional modeled per-task cost charged by layered runtimes (the
  /// OmpSs front-end charges its dynamic task instantiation/scheduling
  /// overhead here; §III reports it at 15-50%).
  double layered_overhead_s = 0.0;
};

/// Transfer payload: moves `length` bytes of one buffer region between
/// the host incarnation and the sink-domain incarnation — or, when
/// `peer` names a device, from the peer incarnation to the sink
/// incarnation, staged through the host (the star topology's two-hop
/// device<->device path, pipelined in chunks by the executors).
struct TransferPayload {
  BufferId buffer;
  std::size_t offset = 0;
  std::size_t length = 0;
  XferDir dir = XferDir::src_to_sink;
  /// Source domain for device->device transfers; kHostDomain for the
  /// ordinary host<->sink forms.
  DomainId peer = kHostDomain;
};

/// One enqueued action. Owned by the runtime until completion.
struct ActionRecord {
  ActionId id;
  StreamId stream;
  ActionType type = ActionType::compute;
  std::uint64_t seq = 0;  ///< position within the stream's FIFO order
  /// For transfers on device streams: per-domain enqueue-order transfer
  /// id, assigned under the runtime lock at admission. This is the stable
  /// identity the FaultInjector keys decisions by — unlike dispatch or
  /// copier order, it does not depend on thread interleaving.
  std::uint64_t transfer_seq = 0;
  /// Id of the TaskGraph this action was replayed from (0 = eager
  /// enqueue). Carried into the trace so replayed spans are attributable.
  std::uint32_t graph = 0;
  /// Tenant and session that enqueued this action (0 = untagged: work
  /// outside the service layer). Stamped at admission from the stream's
  /// binding; carried into the trace so per-tenant timelines separate.
  std::uint32_t tenant = 0;
  std::uint32_t session = 0;
  /// True when an AdmissionHook::before_admit accepted this action; its
  /// on_complete is owed exactly once at completion (including
  /// cancellation and failure, so gate permits never leak).
  bool gated = false;

  /// Declared memory operands; the dependence analysis domain.
  std::vector<Operand> operands;

  /// Full-barrier actions conflict with every other action in the stream
  /// (a stream-wide synchronization; also used by strict-FIFO policy
  /// emulation of legacy sync APIs).
  bool full_barrier = false;

  ComputePayload compute;
  TransferPayload transfer;
  std::shared_ptr<EventState> wait_event;  ///< for event_wait actions

  /// Completion event; always present so cross-stream deps can attach.
  std::shared_ptr<EventState> completion = std::make_shared<EventState>();

  enum class State { pending, dispatched, done };
  State state = State::pending;

  /// Completion ownership. Exactly one path may complete an action: the
  /// executor's `done` callback in the common case, or the runtime itself
  /// when the action is cancelled or its domain is lost. The first path to
  /// set `claimed` (under the runtime lock) wins; late completions from
  /// the other path are ignored, which is what makes failure exactly-once.
  bool claimed = false;
  /// Set by stream_cancel / domain loss: the action completed without its
  /// effects having run.
  bool cancelled = false;
  /// Set by fail_action: the action's body threw (its effects are
  /// suspect). Recovery planning treats failed and cancelled records as
  /// seeds of the re-execution set.
  bool failed = false;
  /// Set by the runtime's online transfer elision: the destination range
  /// was already byte-identical to the source, so the transfer completed
  /// as a zero-cost no-op (never reached an executor; FIFO and event
  /// semantics unchanged).
  bool elided = false;

  /// Residency pins taken at dispatch (Runtime::prepare_residency):
  /// (buffer, domain) incarnations that must not be evicted while this
  /// action is in flight. Released exactly once in process_completion —
  /// on success, failure, cancellation, and elision alike. One entry per
  /// pin call, so duplicates (a compute with two operands on one buffer)
  /// balance.
  std::vector<std::pair<BufferId, DomainId>> pins;
  /// Modeled seconds of out-of-core work charged to this action at
  /// dispatch: victim writeback performed to admit its operands plus
  /// demand re-fetch uploads of spilled ranges. Simulated executors add
  /// it to the action's virtual duration; threaded execution pays the
  /// real memcpy cost on the dispatching thread and ignores this field.
  double ooc_stall_s = 0.0;

  /// True if this action's operands (or barrier flag) conflict with an
  /// earlier action's. This pairwise test is the *reference* dependence
  /// semantics: the admission fast path derives the same edge set from
  /// the per-stream interval index (core/buffer.hpp), and the
  /// HS_DEP_ORACLE debug mode cross-checks the two on every admission.
  [[nodiscard]] bool conflicts_with(const ActionRecord& earlier) const {
    if (full_barrier || earlier.full_barrier) {
      return true;
    }
    for (const Operand& mine : operands) {
      for (const Operand& theirs : earlier.operands) {
        if (mine.conflicts_with(theirs)) {
          return true;
        }
      }
    }
    return false;
  }
};

}  // namespace hs
