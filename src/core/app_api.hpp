#pragma once

// The hStreams "app API" layer.
//
// §II: "High-level hStreams APIs allow the specified or visible (via
// automatic discovery) resources to be evenly divided up among a
// specified number of streams. Again this division and assignment can be
// under full user control with low-level APIs, or almost fully-automatic,
// with high-level APIs."
//
// AppApi discovers the runtime's domains, evenly partitions each chosen
// domain's hardware threads into the requested number of streams, and
// exposes integer-indexed streams with one-call transfer/invoke/sync —
// the interface the paper's matmul/Cholesky reference codes are written
// against.

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace hs {

struct AppConfig {
  std::size_t streams_per_device = 4;
  /// Host-as-target streams ("*Host refers to host-as-target streams",
  /// Figs 4-5). Zero disables host streams.
  std::size_t host_streams = 0;
  /// Host threads kept back for the source endpoint (enqueueing thread).
  std::size_t host_threads_reserved = 1;
  /// Multi-tenant service mode: when `tenant` is non-zero, every stream
  /// this AppApi creates is bound to (tenant, session), so the app runs
  /// as a client of that tenant — tagged, counted into its stats slice,
  /// and admission-gated. Session::bound(AppConfig{...}) fills these.
  std::uint32_t tenant = 0;
  std::uint32_t session = 0;
};

class AppApi {
 public:
  /// Discovers domains and creates the partitioned streams.
  AppApi(Runtime& runtime, AppConfig config);

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return streams_.size();
  }
  [[nodiscard]] StreamId stream(std::size_t index) const;
  [[nodiscard]] DomainId stream_domain(std::size_t index) const;
  /// Indices of streams whose sink is `domain`.
  [[nodiscard]] std::vector<std::size_t> streams_on(DomainId domain) const;
  /// Indices of host-as-target streams (empty if none were requested).
  [[nodiscard]] const std::vector<std::size_t>& host_streams() const noexcept {
    return host_stream_indices_;
  }
  /// Indices of device streams, in (device, partition) order.
  [[nodiscard]] const std::vector<std::size_t>& device_streams()
      const noexcept {
    return device_stream_indices_;
  }

  /// Wraps user memory as a buffer and instantiates it in every domain
  /// that has a stream (one-call equivalent of create + N instantiates).
  BufferId create_buf(void* ptr, std::size_t size, BufferProps props = {});

  /// Instantiates an *existing* buffer in every alive stream domain that
  /// lacks an incarnation — how a recovery path hands a buffer that
  /// survived a previous AppApi (e.g. evacuated off a dead device) to a
  /// freshly partitioned one.
  void adopt_buf(BufferId id);

  /// hStreams_app_xfer_memory equivalent.
  std::shared_ptr<EventState> xfer_memory(std::size_t stream_index, void* ptr,
                                          std::size_t len, XferDir dir);

  /// hStreams_app_invoke equivalent: enqueue a named compute task.
  std::shared_ptr<EventState> invoke(std::size_t stream_index,
                                     std::string kernel, double flops,
                                     std::function<void(TaskContext&)> body,
                                     std::span<const OperandRef> operands);

  /// hStreams_app_event_wait equivalent (host-side wait on events).
  void event_wait(std::span<const std::shared_ptr<EventState>> events,
                  WaitMode mode = WaitMode::all);

  /// Enqueue a cross-stream dependency: stream waits for `event`.
  std::shared_ptr<EventState> stream_wait_event(
      std::size_t stream_index, std::shared_ptr<EventState> event);

  void stream_synchronize(std::size_t stream_index);
  void synchronize() { runtime_.synchronize(); }

 private:
  Runtime& runtime_;
  std::vector<StreamId> streams_;
  std::vector<DomainId> stream_domains_;
  std::vector<std::size_t> host_stream_indices_;
  std::vector<std::size_t> device_stream_indices_;
  std::vector<DomainId> buffer_domains_;  ///< domains buffers instantiate in
};

}  // namespace hs
