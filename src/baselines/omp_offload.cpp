#include "baselines/omp_offload.hpp"

#include "hsblas/kernels.hpp"

namespace hs::baselines {
namespace {

/// First non-host domain (the offload target).
DomainId offload_device(const Runtime& runtime) {
  require(runtime.domain_count() > 1, "offload baseline needs a device");
  return DomainId{1};
}

OffloadStats finish(Runtime& runtime, double t0, double flops) {
  OffloadStats stats;
  stats.seconds = runtime.now() - t0;
  stats.gflops = flops / stats.seconds / 1e9;
  return stats;
}

}  // namespace

OffloadStats omp40_matmul_untiled(Runtime& runtime, blas::Matrix& a,
                                  blas::Matrix& b, blas::Matrix& c) {
  require(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols(),
          "shapes");
  const DomainId dev = offload_device(runtime);
  // One device-wide stream: OpenMP target regions own the whole device.
  const StreamId s = runtime.stream_create(
      dev, CpuMask::first_n(runtime.domain(dev).hw_threads()));
  for (blas::Matrix* m : {&a, &b, &c}) {
    const BufferId id = runtime.buffer_create(m->data(), m->size_bytes());
    runtime.buffer_instantiate(id, dev);
  }

  const double t0 = runtime.now();
  // map(to: a, b) — blocking.
  (void)runtime.enqueue_transfer(s, a.data(), a.size_bytes(),
                                 XferDir::src_to_sink);
  (void)runtime.enqueue_transfer(s, b.data(), b.size_bytes(),
                                 XferDir::src_to_sink);
  runtime.stream_synchronize(s);
  // target region — blocking.
  {
    ComputePayload task;
    task.kernel = "dgemm";
    task.flops = blas::gemm_flops(c.rows(), c.cols(), a.cols());
    double* pa = a.data();
    double* pb = b.data();
    double* pc = c.data();
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    const std::size_t k = a.cols();
    task.body = [pa, pb, pc, m, n, k](TaskContext& ctx) {
      const double* ta = ctx.translate(pa, m * k);
      const double* tb = ctx.translate(pb, k * n);
      double* tc = ctx.translate(pc, m * n);
      blas::gemm(blas::Op::none, blas::Op::none, 1.0, {ta, m, k, m},
                 {tb, k, n, k}, 0.0, {tc, m, n, m});
    };
    const OperandRef ops[] = {{pa, m * k * sizeof(double), Access::in},
                              {pb, k * n * sizeof(double), Access::in},
                              {pc, m * n * sizeof(double), Access::out}};
    (void)runtime.enqueue_compute(s, std::move(task), ops);
    runtime.stream_synchronize(s);
  }
  // map(from: c) — blocking.
  (void)runtime.enqueue_transfer(s, c.data(), c.size_bytes(),
                                 XferDir::sink_to_src);
  runtime.stream_synchronize(s);
  return finish(runtime, t0,
                blas::gemm_flops(c.rows(), c.cols(), a.cols()));
}

namespace {

/// Shared tiled-matmul skeleton.
///
/// blocking=true models OpenMP 4.0: each (i,p,k) task is its own `target`
/// region with map(to:)/map(from:) clauses, so *every* task re-transfers
/// its three tiles and blocks — there is no device residency without an
/// enclosing `target data`, and no asynchrony at all. This is why the
/// paper's tiled 4.0 formulation has "less than half of the performance"
/// of the untiled one (180 vs 460 GF/s).
///
/// blocking=false models OpenMP 4.5: an enclosing `target data` keeps
/// tiles resident, transfers are `nowait` with depend clauses — one
/// relaxed device queue, but still no device subdivision.
OffloadStats omp_matmul_tiled(Runtime& runtime, apps::TiledMatrix& a,
                              apps::TiledMatrix& b, apps::TiledMatrix& c,
                              bool blocking) {
  require(a.tile() == b.tile() && b.tile() == c.tile(), "tile mismatch");
  const DomainId dev = offload_device(runtime);
  const StreamId s = runtime.stream_create(
      dev, CpuMask::first_n(runtime.domain(dev).hw_threads()),
      OrderPolicy::relaxed_fifo);
  for (apps::TiledMatrix* m : {&a, &b, &c}) {
    const BufferId id = runtime.buffer_create(m->data(), m->size_bytes());
    runtime.buffer_instantiate(id, dev);
  }

  const std::size_t mt = a.row_tiles();
  const std::size_t kt = a.col_tiles();
  const std::size_t nt = c.col_tiles();
  const double t0 = runtime.now();

  for (std::size_t p = 0; p < nt; ++p) {
    for (std::size_t k = 0; k < kt; ++k) {
      for (std::size_t i = 0; i < mt; ++i) {
        if (blocking) {
          // 4.0: every target region maps its operands in afresh.
          (void)runtime.enqueue_transfer(s, a.tile_ptr(i, k),
                                         a.tile_bytes(i, k),
                                         XferDir::src_to_sink);
          (void)runtime.enqueue_transfer(s, b.tile_ptr(k, p),
                                         b.tile_bytes(k, p),
                                         XferDir::src_to_sink);
          if (k > 0) {  // map(tofrom: C) — in again after the round trip
            (void)runtime.enqueue_transfer(s, c.tile_ptr(i, p),
                                           c.tile_bytes(i, p),
                                           XferDir::src_to_sink);
          }
          runtime.stream_synchronize(s);
        } else {
          // 4.5: device-resident tiles, nowait transfers, send once.
          if (p == 0) {  // A(i,k) is reused across panels
            (void)runtime.enqueue_transfer(s, a.tile_ptr(i, k),
                                           a.tile_bytes(i, k),
                                           XferDir::src_to_sink);
          }
          if (i == 0) {  // B(k,p) is reused down the panel
            (void)runtime.enqueue_transfer(s, b.tile_ptr(k, p),
                                           b.tile_bytes(k, p),
                                           XferDir::src_to_sink);
          }
        }
        const double* pa = a.tile_ptr(i, k);
        const double* pb = b.tile_ptr(k, p);
        double* pc = c.tile_ptr(i, p);
        const std::size_t m_r = a.tile_rows(i);
        const std::size_t k_c = a.tile_cols(k);
        const std::size_t n_c = b.tile_cols(p);
        const double beta = k == 0 ? 0.0 : 1.0;
        ComputePayload task;
        task.kernel = "dgemm";
        task.flops = blas::gemm_flops(m_r, n_c, k_c);
        task.body = [pa, pb, pc, m_r, k_c, n_c, beta](TaskContext& ctx) {
          const double* ta = ctx.translate(pa, m_r * k_c);
          const double* tb = ctx.translate(pb, k_c * n_c);
          double* tc = ctx.translate(pc, m_r * n_c);
          blas::gemm(blas::Op::none, blas::Op::none, 1.0,
                     {ta, m_r, k_c, m_r}, {tb, k_c, n_c, k_c}, beta,
                     {tc, m_r, n_c, m_r});
        };
        const OperandRef ops[] = {
            {pa, m_r * k_c * sizeof(double), Access::in},
            {pb, k_c * n_c * sizeof(double), Access::in},
            {pc, m_r * n_c * sizeof(double),
             k == 0 ? Access::out : Access::inout}};
        (void)runtime.enqueue_compute(s, std::move(task), ops);
        if (blocking) {
          runtime.stream_synchronize(s);
          // map(tofrom: C) closes: C returns after every target region.
          (void)runtime.enqueue_transfer(s, c.tile_ptr(i, p),
                                         c.tile_bytes(i, p),
                                         XferDir::sink_to_src);
          runtime.stream_synchronize(s);
        } else if (k + 1 == kt) {
          (void)runtime.enqueue_transfer(s, c.tile_ptr(i, p),
                                         c.tile_bytes(i, p),
                                         XferDir::sink_to_src);
        }
      }
    }
  }
  runtime.synchronize();
  return finish(runtime, t0,
                blas::gemm_flops(a.rows(), c.cols(), a.cols()));
}

}  // namespace

OffloadStats omp40_matmul_tiled(Runtime& runtime, apps::TiledMatrix& a,
                                apps::TiledMatrix& b, apps::TiledMatrix& c) {
  return omp_matmul_tiled(runtime, a, b, c, /*blocking=*/true);
}

OffloadStats omp45_matmul_tiled(Runtime& runtime, apps::TiledMatrix& a,
                                apps::TiledMatrix& b, apps::TiledMatrix& c) {
  return omp_matmul_tiled(runtime, a, b, c, /*blocking=*/false);
}

OffloadStats native_dgemm(Runtime& runtime, blas::Matrix& a, blas::Matrix& b,
                          blas::Matrix& c) {
  const StreamId s = runtime.stream_create(
      kHostDomain,
      CpuMask::first_n(runtime.domain(kHostDomain).hw_threads()));
  for (blas::Matrix* m : {&a, &b, &c}) {
    (void)runtime.buffer_create(m->data(), m->size_bytes());
  }
  const double flops = blas::gemm_flops(c.rows(), c.cols(), a.cols());
  const double t0 = runtime.now();
  ComputePayload task;
  task.kernel = "dgemm";
  task.flops = flops;
  double* pa = a.data();
  double* pb = b.data();
  double* pc = c.data();
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = a.cols();
  task.body = [pa, pb, pc, m, n, k](TaskContext&) {
    blas::gemm(blas::Op::none, blas::Op::none, 1.0, {pa, m, k, m},
               {pb, k, n, k}, 0.0, {pc, m, n, m});
  };
  const OperandRef ops[] = {{pa, m * k * sizeof(double), Access::in},
                            {pb, k * n * sizeof(double), Access::in},
                            {pc, m * n * sizeof(double), Access::out}};
  (void)runtime.enqueue_compute(s, std::move(task), ops);
  runtime.stream_synchronize(s);
  return finish(runtime, t0, flops);
}

OffloadStats native_potrf(Runtime& runtime, blas::Matrix& a) {
  require(a.rows() == a.cols(), "potrf needs square");
  const StreamId s = runtime.stream_create(
      kHostDomain,
      CpuMask::first_n(runtime.domain(kHostDomain).hw_threads()));
  (void)runtime.buffer_create(a.data(), a.size_bytes());
  const double flops = blas::potrf_flops(a.rows());
  const double t0 = runtime.now();
  ComputePayload task;
  task.kernel = "dpotrf";
  task.flops = flops;
  double* pa = a.data();
  const std::size_t n = a.rows();
  task.body = [pa, n](TaskContext&) {
    const int info = blas::potrf_lower({pa, n, n, n});
    require(info == 0, "native potrf: not positive definite");
  };
  const OperandRef ops[] = {{pa, n * n * sizeof(double), Access::inout}};
  (void)runtime.enqueue_compute(s, std::move(task), ops);
  runtime.stream_synchronize(s);
  return finish(runtime, t0, flops);
}

}  // namespace hs::baselines
