#pragma once

// OpenCL-like API shim (paper §IV "Other Related Work" and Fig 3).
//
// Reproduces two properties the paper attributes to the OpenCL path:
//   * boilerplate volume — platform/device/context/queue/program/kernel
//     setup plus per-argument setKernelArg calls, all counted for the
//     Fig 3 API comparison;
//   * poor MIC performance — "OpenCL performance is poor because clBLAS
//     is not well tuned for MIC": launches use the "opencl_gemm" kernel
//     class, whose calibrated rate on the KNC model is ~36 GF/s.
//
// Command queues are in-order (the OpenCL default), i.e. strict FIFO.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace hs::baselines {

class OpenClShim {
 public:
  /// Models clGetPlatformIDs / clGetDeviceIDs / clCreateContext /
  /// clCreateCommandQueue / clCreateProgramWithSource / clBuildProgram /
  /// clCreateKernel — the fixed initialization sequence.
  OpenClShim(Runtime& runtime, DomainId device, std::size_t nqueues);

  /// clCreateBuffer.
  [[nodiscard]] double* create_buffer(std::size_t elems);

  /// clSetKernelArg (counted per argument, as real OpenCL requires).
  void set_kernel_arg(std::size_t index, const void* value);

  /// clEnqueueWriteBuffer / clEnqueueReadBuffer.
  void enqueue_write(std::size_t queue, double* buffer, std::size_t elems);
  void enqueue_read(std::size_t queue, double* buffer, std::size_t elems);

  /// clEnqueueNDRangeKernel running the clBLAS-style gemm on the last
  /// arguments set with set_kernel_arg(0..2) = (a, b, c).
  void enqueue_gemm(std::size_t queue, std::size_t m, std::size_t n,
                    std::size_t k, double beta);

  /// clFinish.
  void finish(std::size_t queue);

  [[nodiscard]] std::size_t total_api_calls() const { return calls_; }
  [[nodiscard]] std::size_t unique_api_count() const {
    return unique_.size();
  }

 private:
  void count(const char* api);

  Runtime& runtime_;
  DomainId device_;
  std::vector<StreamId> queues_;
  std::vector<std::unique_ptr<double[]>> allocations_;
  const void* args_[3] = {nullptr, nullptr, nullptr};
  std::size_t calls_ = 0;
  std::set<std::string> unique_;
};

}  // namespace hs::baselines
