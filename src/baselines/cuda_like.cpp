#include "baselines/cuda_like.hpp"

#include "hsblas/kernels.hpp"

namespace hs::baselines {

CudaShim::CudaShim(Runtime& runtime, DomainId device, std::size_t nstreams)
    : runtime_(runtime), device_(device) {
  require(device != kHostDomain, "CUDA shim targets a device");
  count("cudaSetDevice");
  const std::size_t threads = runtime.domain(device).hw_threads();
  const auto masks = CpuMask::partition(threads, nstreams);
  for (const CpuMask& mask : masks) {
    count("cudaStreamCreate");
    streams_.push_back(
        runtime.stream_create(device, mask, OrderPolicy::strict_fifo));
  }
}

CudaShim::~CudaShim() {
  // cudaStreamDestroy / cudaFree bookkeeping happens in the runtime; the
  // destructor only models the API surface.
}

void CudaShim::count(const char* api) {
  ++calls_;
  unique_.insert(api);
}

double* CudaShim::cuda_malloc(std::size_t elems) {
  count("cudaMalloc");
  allocations_.push_back(std::make_unique<double[]>(elems));
  double* base = allocations_.back().get();
  const BufferId id =
      runtime_.buffer_create(base, elems * sizeof(double));
  runtime_.buffer_instantiate(id, device_);
  return base;
}

void CudaShim::memcpy_async(double* dev_handle, std::size_t elems,
                            XferDir dir, std::size_t stream) {
  count("cudaMemcpyAsync");
  require(stream < streams_.size(), "bad stream", Errc::not_found);
  (void)runtime_.enqueue_transfer(streams_[stream], dev_handle,
                                  elems * sizeof(double), dir);
}

void CudaShim::launch_gemm(std::size_t stream, std::size_t m, std::size_t n,
                           std::size_t k, double alpha, const double* a,
                           const double* b, double beta, double* c) {
  count("cublasDgemm");
  require(stream < streams_.size(), "bad stream", Errc::not_found);
  ComputePayload task;
  task.kernel = "dgemm";
  task.flops = blas::gemm_flops(m, n, k);
  task.body = [a, b, c, m, n, k, alpha, beta](TaskContext& ctx) {
    const double* ta = ctx.translate(a, m * k);
    const double* tb = ctx.translate(b, k * n);
    double* tc = ctx.translate(c, m * n);
    blas::gemm(blas::Op::none, blas::Op::none, alpha, {ta, m, k, m},
               {tb, k, n, k}, beta, {tc, m, n, m});
  };
  const OperandRef ops[] = {
      {a, m * k * sizeof(double), Access::in},
      {b, k * n * sizeof(double), Access::in},
      {c, m * n * sizeof(double), beta == 0.0 ? Access::out : Access::inout}};
  (void)runtime_.enqueue_compute(streams_[stream], std::move(task), ops);
}

std::size_t CudaShim::event_create() {
  count("cudaEventCreate");
  events_.push_back(nullptr);
  return events_.size() - 1;
}

void CudaShim::event_record(std::size_t event, std::size_t stream) {
  count("cudaEventRecord");
  require(event < events_.size() && stream < streams_.size(), "bad handle",
          Errc::not_found);
  events_[event] = runtime_.enqueue_signal(streams_[stream]);
}

void CudaShim::stream_wait_event(std::size_t stream, std::size_t event) {
  count("cudaStreamWaitEvent");
  require(event < events_.size() && events_[event] != nullptr &&
              stream < streams_.size(),
          "bad handle", Errc::not_found);
  // CUDA semantics: the whole stream stalls (no operand scoping).
  (void)runtime_.enqueue_event_wait(streams_[stream], events_[event]);
}

void CudaShim::event_synchronize(std::size_t event) {
  count("cudaEventSynchronize");
  require(event < events_.size() && events_[event] != nullptr, "bad handle",
          Errc::not_found);
  const std::shared_ptr<EventState> evs[] = {events_[event]};
  runtime_.event_wait_host(evs);
}

void CudaShim::stream_synchronize(std::size_t stream) {
  count("cudaStreamSynchronize");
  require(stream < streams_.size(), "bad stream", Errc::not_found);
  runtime_.stream_synchronize(streams_[stream]);
}

void CudaShim::device_synchronize() {
  count("cudaDeviceSynchronize");
  runtime_.synchronize();
}

}  // namespace hs::baselines
