#include "baselines/opencl_like.hpp"

#include "hsblas/kernels.hpp"

namespace hs::baselines {

OpenClShim::OpenClShim(Runtime& runtime, DomainId device, std::size_t nqueues)
    : runtime_(runtime), device_(device) {
  require(device != kHostDomain, "OpenCL shim targets a device");
  // The unavoidable setup litany.
  count("clGetPlatformIDs");
  count("clGetDeviceIDs");
  count("clCreateContext");
  count("clCreateProgramWithSource");
  count("clBuildProgram");
  count("clCreateKernel");
  const std::size_t threads = runtime.domain(device).hw_threads();
  const auto masks = CpuMask::partition(threads, nqueues);
  for (const CpuMask& mask : masks) {
    count("clCreateCommandQueue");
    // In-order queues: strict FIFO.
    queues_.push_back(
        runtime.stream_create(device, mask, OrderPolicy::strict_fifo));
  }
}

void OpenClShim::count(const char* api) {
  ++calls_;
  unique_.insert(api);
}

double* OpenClShim::create_buffer(std::size_t elems) {
  count("clCreateBuffer");
  allocations_.push_back(std::make_unique<double[]>(elems));
  double* base = allocations_.back().get();
  const BufferId id = runtime_.buffer_create(base, elems * sizeof(double));
  runtime_.buffer_instantiate(id, device_);
  return base;
}

void OpenClShim::set_kernel_arg(std::size_t index, const void* value) {
  count("clSetKernelArg");
  require(index < 3, "kernel has 3 buffer arguments", Errc::out_of_range);
  args_[index] = value;
}

void OpenClShim::enqueue_write(std::size_t queue, double* buffer,
                               std::size_t elems) {
  count("clEnqueueWriteBuffer");
  require(queue < queues_.size(), "bad queue", Errc::not_found);
  (void)runtime_.enqueue_transfer(queues_[queue], buffer,
                                  elems * sizeof(double),
                                  XferDir::src_to_sink);
}

void OpenClShim::enqueue_read(std::size_t queue, double* buffer,
                              std::size_t elems) {
  count("clEnqueueReadBuffer");
  require(queue < queues_.size(), "bad queue", Errc::not_found);
  (void)runtime_.enqueue_transfer(queues_[queue], buffer,
                                  elems * sizeof(double),
                                  XferDir::sink_to_src);
}

void OpenClShim::enqueue_gemm(std::size_t queue, std::size_t m,
                              std::size_t n, std::size_t k, double beta) {
  count("clEnqueueNDRangeKernel");
  require(queue < queues_.size(), "bad queue", Errc::not_found);
  require(args_[0] != nullptr && args_[1] != nullptr && args_[2] != nullptr,
          "kernel arguments not set");
  const auto* a = static_cast<const double*>(args_[0]);
  const auto* b = static_cast<const double*>(args_[1]);
  auto* c = static_cast<double*>(const_cast<void*>(args_[2]));
  ComputePayload task;
  task.kernel = "opencl_gemm";  // clBLAS: badly tuned for the MIC (§IV)
  task.flops = blas::gemm_flops(m, n, k);
  task.body = [a, b, c, m, n, k, beta](TaskContext& ctx) {
    const double* ta = ctx.translate(a, m * k);
    const double* tb = ctx.translate(b, k * n);
    double* tc = ctx.translate(c, m * n);
    blas::gemm(blas::Op::none, blas::Op::none, 1.0, {ta, m, k, m},
               {tb, k, n, k}, beta, {tc, m, n, m});
  };
  const OperandRef ops[] = {
      {a, m * k * sizeof(double), Access::in},
      {b, k * n * sizeof(double), Access::in},
      {c, m * n * sizeof(double), beta == 0.0 ? Access::out : Access::inout}};
  (void)runtime_.enqueue_compute(queues_[queue], std::move(task), ops);
}

void OpenClShim::finish(std::size_t queue) {
  count("clFinish");
  require(queue < queues_.size(), "bad queue", Errc::not_found);
  runtime_.stream_synchronize(queues_[queue]);
}

}  // namespace hs::baselines
