#pragma once

// CUDA-Streams-like API shim (paper §IV "CUDA Streams" and Fig 3).
//
// Exposes the CUDA programming surface over the core runtime configured
// with strict-FIFO streams, reproducing the semantic differences the
// paper calls out:
//   * strict in-order execution within a stream (no out-of-order under a
//     FIFO semantic);
//   * cross-action dependences only via explicit event record/wait, and
//     a stream-level wait blocks the *whole* stream (full barrier);
//   * distinct device allocations: `cuda_malloc` returns a device-side
//     handle the caller must track per device ("multiple variables are
//     needed to keep the addresses for each memory space");
//   * explicit creation/destruction of streams and events.
//
// Every method bumps an API-call counter; Fig 3's "unique APIs / total
// APIs used" rows are measured from these counters by bench_fig3.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace hs::baselines {

class CudaShim {
 public:
  /// The shim drives `device` with `nstreams` strict-FIFO streams that
  /// partition the device's threads (the hardware scheduler analogue).
  CudaShim(Runtime& runtime, DomainId device, std::size_t nstreams);
  ~CudaShim();

  /// cudaMalloc: allocates device-backed storage and returns the handle
  /// the caller uses with memcpy/launch. (Internally a proxy pointer,
  /// but the caller must keep one handle per matrix per device.)
  [[nodiscard]] double* cuda_malloc(std::size_t elems);

  /// cudaMemcpyAsync(handle, ..., stream).
  void memcpy_async(double* dev_handle, std::size_t elems, XferDir dir,
                    std::size_t stream);

  /// cublasDgemm-style launch: C = alpha*A*B + beta*C on `stream`.
  void launch_gemm(std::size_t stream, std::size_t m, std::size_t n,
                   std::size_t k, double alpha, const double* a,
                   const double* b, double beta, double* c);

  /// cudaEventCreate / cudaEventRecord / cudaStreamWaitEvent /
  /// cudaEventSynchronize.
  [[nodiscard]] std::size_t event_create();
  void event_record(std::size_t event, std::size_t stream);
  void stream_wait_event(std::size_t stream, std::size_t event);
  void event_synchronize(std::size_t event);

  void stream_synchronize(std::size_t stream);
  void device_synchronize();

  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }
  /// Fig 3 counters.
  [[nodiscard]] std::size_t total_api_calls() const { return calls_; }
  [[nodiscard]] std::size_t unique_api_count() const {
    return unique_.size();
  }

 private:
  void count(const char* api);

  Runtime& runtime_;
  DomainId device_;
  std::vector<StreamId> streams_;
  std::vector<std::unique_ptr<double[]>> allocations_;
  std::vector<std::shared_ptr<EventState>> events_;
  std::size_t calls_ = 0;
  std::set<std::string> unique_;
};

}  // namespace hs::baselines
