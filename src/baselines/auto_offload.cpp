#include "baselines/auto_offload.hpp"

#include "hsblas/kernels.hpp"

namespace hs::baselines {
namespace {

/// Below the AO threshold the call is a plain host MKL DPOTRF: one
/// machine-wide, internally-parallel task. The body factors the packed
/// tiles sequentially (the task granularity, not the numerics, is what
/// distinguishes this path).
AutoOffloadStats host_native_path(Runtime& runtime, apps::TiledMatrix& a) {
  const StreamId s = runtime.stream_create(
      kHostDomain,
      CpuMask::first_n(runtime.domain(kHostDomain).hw_threads()));
  (void)runtime.buffer_create(a.data(), a.size_bytes());
  const double flops = blas::potrf_flops(a.rows());
  const double t0 = runtime.now();

  ComputePayload task;
  task.kernel = "dpotrf";
  task.flops = flops;
  apps::TiledMatrix* pa = &a;
  task.body = [pa](TaskContext&) {
    // Sequential tiled right-looking Cholesky over the packed storage
    // (host task: proxy addresses are the real addresses).
    apps::TiledMatrix& m = *pa;
    const std::size_t nt = m.row_tiles();
    for (std::size_t k = 0; k < nt; ++k) {
      const int info = blas::potrf_lower(m.tile_view(k, k));
      require(info == 0, "AO host potrf: not positive definite");
      for (std::size_t i = k + 1; i < nt; ++i) {
        blas::trsm_right_lower_trans(m.tile_view(k, k), m.tile_view(i, k));
      }
      for (std::size_t j = k + 1; j < nt; ++j) {
        for (std::size_t i = j; i < nt; ++i) {
          if (i == j) {
            blas::syrk_lower(-1.0, m.tile_view(i, k), 1.0, m.tile_view(i, i));
          } else {
            blas::gemm(blas::Op::none, blas::Op::transpose, -1.0,
                       m.tile_view(i, k), m.tile_view(j, k), 1.0,
                       m.tile_view(i, j));
          }
        }
      }
    }
  };
  const OperandRef ops[] = {{a.data(), a.size_bytes(), Access::inout}};
  (void)runtime.enqueue_compute(s, std::move(task), ops);
  runtime.stream_synchronize(s);

  AutoOffloadStats stats;
  stats.seconds = runtime.now() - t0;
  stats.gflops = flops / stats.seconds / 1e9;
  stats.offloaded = false;
  return stats;
}

}  // namespace

AutoOffloadStats mkl_ao_cholesky(Runtime& runtime,
                                 const AutoOffloadConfig& config,
                                 apps::TiledMatrix& a) {
  const std::size_t cards = runtime.domain_count() - 1;
  const bool offload =
      cards > 0 && a.rows() >= config.offload_threshold_n;
  if (!offload) {
    return host_native_path(runtime, a);
  }

  apps::CholeskyConfig chol;
  chol.bulk_synchronous = true;  // AO's internal phases are synchronous
  chol.streams_per_device = config.streams_per_device;
  chol.host_streams = config.host_streams;
  chol.domain_weights.assign(cards + 1, 1.0);
  chol.domain_weights.front() = config.host_weight;

  const apps::CholeskyStats stats = run_cholesky(runtime, chol, a);
  return AutoOffloadStats{stats.seconds, stats.gflops, true};
}

}  // namespace hs::baselines
