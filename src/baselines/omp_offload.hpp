#pragma once

// OpenMP offload baselines (paper §IV "OpenMP" and Fig 3).
//
// Models of what the `target` constructs of OpenMP 4.0/4.5 can express,
// built on the same runtime/substrates as hStreams so the comparison is
// apples-to-apples:
//
//  * OpenMP 4.0 — synchronous offload only: map(to:...) blocks, the
//    target region blocks, map(from:...) blocks. No concurrency within
//    the device ("OpenMP does not use concurrency within the device and
//    does not support an asynchronous transfer"), so an untiled whole-
//    matrix offload is its best formulation (Fig 3: 460 GF/s) and a
//    tiled one is *worse* (180 GF/s) because each tile pays a blocking
//    round trip.
//  * OpenMP 4.5 — adds asynchronous transfers (`nowait` + depend), but
//    still no device subdivision: one queue per device; transfers can
//    overlap compute, two computes never overlap.

#include "apps/tiled_matrix.hpp"
#include "core/runtime.hpp"

namespace hs::baselines {

struct OffloadStats {
  double seconds = 0.0;
  double gflops = 0.0;
};

/// OpenMP 4.0 style, best formulation: one `target data map(to:A,B)
/// map(from:C)` region around a single whole-matrix dgemm on the device.
OffloadStats omp40_matmul_untiled(Runtime& runtime, blas::Matrix& a,
                                  blas::Matrix& b, blas::Matrix& c);

/// OpenMP 4.0 style, tiled formulation: per (i,p,k) tile task a blocking
/// upload, a blocking compute and (on the last k) a blocking download —
/// no overlap anywhere. Fig 3's "less than half the performance" row.
OffloadStats omp40_matmul_tiled(Runtime& runtime, apps::TiledMatrix& a,
                                apps::TiledMatrix& b, apps::TiledMatrix& c);

/// OpenMP 4.5 style: tiled with `nowait` transfers and depend clauses —
/// one relaxed-FIFO device queue; transfers overlap compute, but the
/// device is never subdivided so computes serialize.
OffloadStats omp45_matmul_tiled(Runtime& runtime, apps::TiledMatrix& a,
                                apps::TiledMatrix& b, apps::TiledMatrix& c);

/// Host-native BLAS call (the "HSW native (MKL)" rows of Figs 6-7): one
/// machine-wide task on the host, no tiling, no transfers.
OffloadStats native_dgemm(Runtime& runtime, blas::Matrix& a, blas::Matrix& b,
                          blas::Matrix& c);
OffloadStats native_potrf(Runtime& runtime, blas::Matrix& a);

}  // namespace hs::baselines
