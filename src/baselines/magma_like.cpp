#include "baselines/magma_like.hpp"

#include <vector>

#include "hsblas/kernels.hpp"

namespace hs::baselines {

MagmaStats magma_cholesky(Runtime& runtime, const MagmaConfig& config,
                          blas::Matrix& a) {
  require(a.rows() == a.cols(), "magma_cholesky needs a square matrix");
  const std::size_t n = a.rows();
  const std::size_t nb = config.nb;
  require(nb > 0, "block size must be positive");
  const std::size_t nblocks = (n + nb - 1) / nb;

  std::vector<DomainId> cards;
  for (std::size_t d = 1; d < runtime.domain_count(); ++d) {
    cards.push_back(DomainId{static_cast<std::uint32_t>(d)});
  }
  require(!cards.empty(), "magma_cholesky needs at least one card");

  // One device-wide stream per card (MAGMA updates use the whole card),
  // one machine-wide host stream for panels.
  std::vector<StreamId> card_stream;
  for (const DomainId card : cards) {
    card_stream.push_back(runtime.stream_create(
        card, CpuMask::first_n(runtime.domain(card).hw_threads())));
  }
  const StreamId host_stream = runtime.stream_create(
      kHostDomain,
      CpuMask::first_n(runtime.domain(kHostDomain).hw_threads()));

  const BufferId buf = runtime.buffer_create(a.data(), a.size_bytes());
  for (const DomainId card : cards) {
    runtime.buffer_instantiate(buf, card);
  }

  // Block column j: columns [j*nb, min(n, (j+1)*nb)), owned (for trailing
  // updates) by card j % cards.
  auto col_begin = [&](std::size_t j) { return j * nb; };
  auto col_width = [&](std::size_t j) {
    return std::min(nb, n - j * nb);
  };
  auto col_ptr = [&](std::size_t j) { return a.data() + col_begin(j) * n; };
  auto col_bytes = [&](std::size_t j) {
    return col_width(j) * n * sizeof(double);
  };
  auto owner = [&](std::size_t j) { return j % cards.size(); };

  const double t0 = runtime.now();

  // Upload each card's owned block columns once.
  for (std::size_t j = 1; j < nblocks; ++j) {
    (void)runtime.enqueue_transfer(card_stream[owner(j)], col_ptr(j),
                                   col_bytes(j), XferDir::src_to_sink);
  }

  std::shared_ptr<EventState> panel_arrival;  // lookahead column on host
  for (std::size_t k = 0; k < nblocks; ++k) {
    const std::size_t j0 = col_begin(k);
    const std::size_t w = col_width(k);

    // --- Host panel: POTRF of the diagonal block + TRSM of the rows
    // below, one latency-bound task on the big cores.
    if (panel_arrival != nullptr) {
      const OperandRef wops[] = {{col_ptr(k), col_bytes(k), Access::out}};
      (void)runtime.enqueue_event_wait(host_stream, panel_arrival, wops);
    }
    std::shared_ptr<EventState> panel_done;
    {
      double* base = a.data();
      const std::size_t rows_below = n - j0 - w;
      ComputePayload task;
      task.kernel = "dpotrf";
      task.flops = blas::potrf_flops(w) +
                   blas::trsm_flops(rows_below, w);
      task.body = [base, n, j0, w, rows_below](TaskContext& ctx) {
        double* local = ctx.translate(base, n * n);
        blas::MatrixView full{local, n, n, n};
        const int info =
            blas::potrf_lower(full.tile(j0, j0, w, w));
        require(info == 0, "magma: matrix not positive definite");
        if (rows_below > 0) {
          blas::trsm_right_lower_trans(
              full.tile(j0, j0, w, w),
              full.tile(j0 + w, j0, rows_below, w));
        }
      };
      const OperandRef ops[] = {{col_ptr(k), col_bytes(k), Access::inout}};
      panel_done =
          runtime.enqueue_compute(host_stream, std::move(task), ops);
    }
    if (k + 1 == nblocks) {
      break;  // last panel: nothing to update
    }

    // --- Broadcast the factored panel column to every card. Updates in
    // the same card stream order after it via FIFO operand conflicts.
    for (std::size_t c = 0; c < cards.size(); ++c) {
      const OperandRef wops[] = {{col_ptr(k), col_bytes(k), Access::out}};
      (void)runtime.enqueue_event_wait(card_stream[c], panel_done, wops);
      (void)runtime.enqueue_transfer(card_stream[c], col_ptr(k),
                                     col_bytes(k), XferDir::src_to_sink);
    }

    // --- Trailing update, lookahead column (k+1) first so it can travel
    // back to the host while the bulk update proceeds.
    auto enqueue_update = [&](std::size_t j) {
      const std::size_t c = owner(j);
      const std::size_t cj0 = col_begin(j);
      const std::size_t cw = col_width(j);
      const std::size_t rows = n - cj0;
      double* base = a.data();
      ComputePayload task;
      task.kernel = "dsyrk";
      task.flops = blas::gemm_flops(rows, cw, w);
      task.body = [base, n, j0, w, cj0, cw, rows](TaskContext& ctx) {
        double* local = ctx.translate(base, n * n);
        blas::MatrixView full{local, n, n, n};
        // A[cj0:n, cj0:cj0+cw] -= A[cj0:n, j0:j0+w] * A[cj0:cj0+cw, j0:j0+w]^T
        blas::gemm(blas::Op::none, blas::Op::transpose, -1.0,
                   blas::ConstMatrixView(full.tile(cj0, j0, rows, w)),
                   blas::ConstMatrixView(full.tile(cj0, j0, cw, w)), 1.0,
                   full.tile(cj0, cj0, rows, cw));
      };
      const OperandRef ops[] = {{col_ptr(k), col_bytes(k), Access::in},
                                {col_ptr(j), col_bytes(j), Access::inout}};
      return runtime.enqueue_compute(card_stream[c], std::move(task), ops);
    };

    (void)enqueue_update(k + 1);
    // Lookahead column returns to the host immediately (same card stream:
    // FIFO + operands order it after the update).
    panel_arrival = runtime.enqueue_transfer(card_stream[owner(k + 1)],
                                             col_ptr(k + 1),
                                             col_bytes(k + 1),
                                             XferDir::sink_to_src);
    for (std::size_t j = k + 2; j < nblocks; ++j) {
      (void)enqueue_update(j);
    }
  }

  runtime.synchronize();
  MagmaStats stats;
  stats.seconds = runtime.now() - t0;
  const double nn = static_cast<double>(n);
  stats.gflops = (nn * nn * nn / 3.0) / stats.seconds / 1e9;
  return stats;
}

}  // namespace hs::baselines
