#pragma once

// MAGMA-style hybrid Cholesky (paper §V "MAGMA" and the Fig 7 curves).
//
// "The lower Cholesky MAGMA function uses the host for the DPOTRF panel
// and does the rest of the work on the MIC card" — the panel
// factorization is latency-bound and belongs on the big cores, while the
// trailing update is a handful of *large* GEMM-class operations that
// saturate the card. One block-column lookahead overlaps the next
// panel's factorization with the bulk of the trailing update; this is
// the classic MAGMA pipeline and the reason its performance curve is
// smooth (few large tasks) compared to the tiled hStreams code (many
// small ones).
//
// Operates on a dense column-major matrix; block columns are contiguous
// ranges, which keeps dependence operands exact.

#include "core/runtime.hpp"
#include "hsblas/matrix.hpp"

namespace hs::baselines {

struct MagmaConfig {
  std::size_t nb = 1024;  ///< block-column width
};

struct MagmaStats {
  double seconds = 0.0;
  double gflops = 0.0;
};

/// Factors the lower triangle of `a` in place (upper triangle is left
/// with update garbage, as LAPACK permits). Uses the host for panels and
/// every card in the runtime for trailing updates, block columns dealt
/// round-robin across cards.
MagmaStats magma_cholesky(Runtime& runtime, const MagmaConfig& config,
                          blas::Matrix& a);

}  // namespace hs::baselines
