#pragma once

// MKL Automatic Offload (AO) style Cholesky (the "MKL AO" curves of
// Fig 7).
//
// AO is a library-internal heterogeneous dispatch: the user calls plain
// DPOTRF and the library decides whether and how to use coprocessors.
// Its character, relative to the hand-tuned hStreams code:
//   * below a size threshold it does not offload at all (card startup
//     costs would dominate);
//   * above it, work is split host/cards with a fixed internal ratio and
//     executed in bulk-synchronous phases — robust, but it forfeits the
//     inter-step pipelining hStreams exposes ("10% greater performance
//     was achieved with hStreams with four days of tuning ... vs months
//     of development by the MKL team", §VI).

#include "apps/cholesky.hpp"

namespace hs::baselines {

struct AutoOffloadConfig {
  std::size_t offload_threshold_n = 6144;  ///< below: host-native path
  std::size_t streams_per_device = 4;
  std::size_t host_streams = 2;
  /// Host compute share relative to one card (AO's fixed internal ratio).
  double host_weight = 0.85;
};

struct AutoOffloadStats {
  double seconds = 0.0;
  double gflops = 0.0;
  bool offloaded = false;
};

/// Factors the lower triangle of `a` in place with AO-style dispatch.
AutoOffloadStats mkl_ao_cholesky(Runtime& runtime,
                                 const AutoOffloadConfig& config,
                                 apps::TiledMatrix& a);

}  // namespace hs::baselines
