#pragma once

// Tenant identity, quotas, and QoS weight for multi-tenant service mode.
//
// A tenant is a client principal: it owns a priority weight (its share
// of the weighted-fair admission gate), resource quotas, and a slice of
// the runtime counters. Sessions (service/session.hpp) are the unit of
// client state *within* a tenant — many sessions share one tenant's
// quotas and weight, the way one customer's connections share one
// account's limits.

#include <cstdint>
#include <string>

#include "core/runtime.hpp"

namespace hs::service {

/// What happens when an enqueue would breach a quota.
enum class QuotaMode {
  block,  ///< the enqueue waits until in-flight work drains below the
          ///< limit (bytes-in-flight only; see TenantConfig notes)
  fail,   ///< the enqueue throws Errc::quota_exceeded immediately
};

struct TenantConfig {
  std::string name;
  /// Fair-share weight: a backlogged tenant with weight 2w is granted
  /// twice the admission cost per gate round of one with weight w.
  std::uint32_t weight = 1;
  /// Max streams concurrently owned by this tenant's sessions
  /// (0 = unlimited). Always fail-fast: only the tenant itself can
  /// release a stream, so blocking would self-deadlock.
  std::size_t max_streams = 0;
  /// Max transfer bytes admitted and not yet completed (0 = unlimited).
  /// Honors `quota_mode`: blocking waits for the runtime to drain (the
  /// wait pumps the executor, so it is safe on the single-threaded sim
  /// backend too); fail throws Errc::quota_exceeded.
  std::size_t max_bytes_in_flight = 0;
  /// Max bytes of this tenant's buffers instantiated on device domains
  /// (0 = unlimited). Always fail-fast, like max_streams: incarnations
  /// are released only by explicit deinstantiate/destroy calls.
  std::size_t max_device_resident_bytes = 0;
  QuotaMode quota_mode = QuotaMode::fail;
};

/// Service-level view of one tenant: the runtime counter slice plus the
/// service's own accounting (quotas, gate behavior, sessions).
struct TenantStats {
  TenantStatsSlice runtime;  ///< enqueues/completions/bytes/elisions
  std::uint64_t quota_rejections = 0;  ///< fail-fast quota_exceeded throws
  std::uint64_t quota_stalls = 0;      ///< blocking-mode waits taken
  std::uint64_t gate_passes = 0;       ///< admissions through the gate
  std::uint64_t gate_waits = 0;        ///< passes that had to queue
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::size_t streams_in_use = 0;
  std::size_t bytes_in_flight = 0;
  std::size_t device_resident_bytes = 0;
};

}  // namespace hs::service
