#include "service/service.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "service/session.hpp"

namespace hs::service {

Service::Service(Runtime& runtime, ServiceConfig config)
    : runtime_(runtime), config_(config) {
  if (config_.fair_admission) {
    gate_ = std::make_unique<FairGate>(config_.policy, config_.quantum,
                                       config_.permits);
  }
  runtime_.set_admission_hook(this);
}

Service::~Service() {
  // Detach first so no new admission can enter the hook. Sessions must
  // already be closed (client contract); in-flight gated actions that
  // complete after this point find no hook and skip their callbacks,
  // which is safe because the gate and the quota ledgers die with us.
  runtime_.set_admission_hook(nullptr);
}

std::uint32_t Service::tenant_create(TenantConfig config) {
  require(config.weight > 0, "tenant weight must be positive");
  const std::unique_lock lock(tenants_mutex_);
  if (!config.name.empty()) {
    for (const TenantState& t : tenants_) {
      require(t.config.name != config.name, "duplicate tenant name",
              Errc::already_initialized);
    }
  }
  const std::uint32_t id = runtime_.tenant_register();
  require(id == tenants_.size() + 1, "tenant registry out of sync",
          Errc::internal);
  if (gate_) {
    gate_->add_tenant(id, config.weight);
  }
  TenantState& t = tenants_.emplace_back();
  t.config = std::move(config);
  t.id = id;
  return id;
}

std::size_t Service::tenant_count() const {
  const std::shared_lock lock(tenants_mutex_);
  return tenants_.size();
}

const TenantConfig& Service::tenant_config(std::uint32_t tenant) const {
  return state(tenant).config;  // immutable after tenant_create
}

std::uint32_t Service::tenant_id(std::string_view name) const {
  const std::shared_lock lock(tenants_mutex_);
  for (const TenantState& t : tenants_) {
    if (!t.config.name.empty() && t.config.name == name) {
      return t.id;
    }
  }
  throw Error(Errc::not_found,
              "no tenant named '" + std::string(name) + "'");
}

TenantStats Service::tenant_stats(std::uint32_t tenant) const {
  const TenantState& t = state(tenant);
  TenantStats st;
  st.runtime = runtime_.tenant_slice(tenant);
  st.quota_rejections = t.quota_rejections.load(std::memory_order_relaxed);
  st.quota_stalls = t.quota_stalls.load(std::memory_order_relaxed);
  st.gate_passes = t.gate_passes.load(std::memory_order_relaxed);
  st.gate_waits = t.gate_waits.load(std::memory_order_relaxed);
  st.sessions_opened = t.sessions_opened.load(std::memory_order_relaxed);
  st.sessions_closed = t.sessions_closed.load(std::memory_order_relaxed);
  {
    const std::scoped_lock lock(t.mu);
    st.streams_in_use = t.streams_in_use;
    st.bytes_in_flight = t.bytes_in_flight;
    st.device_resident_bytes = t.device_resident_bytes;
  }
  return st;
}

std::unique_ptr<Session> Service::open_session(std::uint32_t tenant) {
  TenantState& t = state(tenant);
  const std::uint32_t id =
      next_session_.fetch_add(1, std::memory_order_relaxed);
  t.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  open_sessions_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(*this, tenant, id));
}

std::unique_ptr<Session> Service::open_session(std::string_view tenant) {
  return open_session(tenant_id(tenant));
}

Service::TenantState& Service::state(std::uint32_t tenant) {
  const std::shared_lock lock(tenants_mutex_);
  require(tenant >= 1 && tenant <= tenants_.size(), "unknown tenant",
          Errc::not_found);
  return tenants_[tenant - 1];  // deque entries are pointer-stable
}

const Service::TenantState& Service::state(std::uint32_t tenant) const {
  const std::shared_lock lock(tenants_mutex_);
  require(tenant >= 1 && tenant <= tenants_.size(), "unknown tenant",
          Errc::not_found);
  return tenants_[tenant - 1];
}

// --- AdmissionHook ---------------------------------------------------------

void Service::before_admit(std::uint32_t tenant, ActionType type,
                           std::size_t bytes) {
  TenantState& t = state(tenant);
  // Quota first, gate second: a rejected enqueue must not consume a fair
  // turn, and a blocked one must not stall other tenants while it waits.
  if (type == ActionType::transfer && bytes > 0) {
    const std::size_t limit = t.config.max_bytes_in_flight;
    const auto try_charge = [&t, bytes, limit]() -> bool {
      const std::scoped_lock lock(t.mu);
      if (limit != 0 && t.bytes_in_flight + bytes > limit) {
        return false;
      }
      t.bytes_in_flight += bytes;
      return true;
    };
    if (!try_charge()) {
      // A single transfer larger than the whole quota can never fit:
      // blocking on it would wait forever, so it fails in either mode.
      if (t.config.quota_mode == QuotaMode::fail || bytes > limit) {
        t.quota_rejections.fetch_add(1, std::memory_order_relaxed);
        throw Error(Errc::quota_exceeded,
                    "tenant '" + t.config.name + "' bytes-in-flight quota (" +
                        std::to_string(limit) + ") exceeded by " +
                        std::to_string(bytes) + "-byte transfer");
      }
      t.quota_stalls.fetch_add(1, std::memory_order_relaxed);
      // Executor::wait pumps completions while polling (the sim backend
      // advances virtual time on this thread), so blocking-mode quotas
      // cannot deadlock a single-threaded executor. The predicate claims
      // the budget atomically when it fits — no recheck race.
      runtime_.executor().wait(try_charge);
    }
  }
  if (gate_ && gated_type(type)) {
    const bool waited = gate_->acquire(tenant, gate_cost(bytes));
    t.gate_passes.fetch_add(1, std::memory_order_relaxed);
    if (waited) {
      t.gate_waits.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Service::after_admit(std::uint32_t /*tenant*/, ActionType type) noexcept {
  if (gate_ && gated_type(type)) {
    gate_->release();
  }
}

void Service::on_complete(std::uint32_t tenant, ActionType type,
                          std::size_t bytes) noexcept {
  if (type != ActionType::transfer || bytes == 0 || tenant == 0) {
    return;
  }
  const std::shared_lock lock(tenants_mutex_);
  if (tenant > tenants_.size()) {
    return;  // never: tenants are not removed, but stay noexcept-safe
  }
  TenantState& t = tenants_[tenant - 1];
  const std::scoped_lock quota_lock(t.mu);
  t.bytes_in_flight -= bytes <= t.bytes_in_flight ? bytes : t.bytes_in_flight;
}

// --- Session-side quota accounting -----------------------------------------

void Service::charge_stream(TenantState& t) {
  const std::scoped_lock lock(t.mu);
  if (t.config.max_streams != 0 &&
      t.streams_in_use + 1 > t.config.max_streams) {
    t.quota_rejections.fetch_add(1, std::memory_order_relaxed);
    throw Error(Errc::quota_exceeded,
                "tenant '" + t.config.name + "' stream quota (" +
                    std::to_string(t.config.max_streams) + ") exhausted");
  }
  ++t.streams_in_use;
}

void Service::release_stream(TenantState& t) noexcept {
  const std::scoped_lock lock(t.mu);
  if (t.streams_in_use > 0) {
    --t.streams_in_use;
  }
}

void Service::charge_device_bytes(TenantState& t, std::size_t bytes) {
  const std::scoped_lock lock(t.mu);
  if (t.config.max_device_resident_bytes != 0 &&
      t.device_resident_bytes + bytes > t.config.max_device_resident_bytes) {
    t.quota_rejections.fetch_add(1, std::memory_order_relaxed);
    throw Error(Errc::quota_exceeded,
                "tenant '" + t.config.name + "' device-resident quota (" +
                    std::to_string(t.config.max_device_resident_bytes) +
                    ") exceeded by " + std::to_string(bytes) + " bytes");
  }
  t.device_resident_bytes += bytes;
}

void Service::release_device_bytes(TenantState& t, std::size_t bytes) {
  const std::scoped_lock lock(t.mu);
  // An over-refund is always an accounting bug (double release, or a
  // release for an incarnation whose quota was already refunded at
  // eviction). The old clamp hid it and let the tenant mint free quota.
  assert(bytes <= t.device_resident_bytes &&
         "device-resident refund exceeds the tenant's charged total");
  require(bytes <= t.device_resident_bytes,
          "tenant '" + t.config.name + "' device-resident refund of " +
              std::to_string(bytes) + " bytes exceeds the " +
              std::to_string(t.device_resident_bytes) +
              " bytes charged (double release or unbalanced accounting)",
          Errc::internal);
  t.device_resident_bytes -= bytes;
}

// --- Device-residency registry ---------------------------------------------

bool Service::charge_resident(std::uint32_t tenant, BufferId buffer,
                              DomainId domain, std::size_t bytes) {
  const std::scoped_lock lock(residency_mutex_);
  const auto key = std::make_pair(buffer.value, domain.value);
  if (const auto it = residency_.find(key);
      it != residency_.end() && !it->second.spilled) {
    return false;  // re-instantiate of a live incarnation: already charged
  }
  charge_device_bytes(state(tenant), bytes);  // may throw quota_exceeded
  residency_[key] = ResidentEntry{tenant, bytes, false};
  return true;
}

void Service::forget_resident(BufferId buffer, DomainId domain) {
  ResidentEntry entry;
  {
    const std::scoped_lock lock(residency_mutex_);
    const auto it = residency_.find({buffer.value, domain.value});
    if (it == residency_.end()) {
      return;  // not a session-charged incarnation (or already forgotten)
    }
    entry = it->second;
    residency_.erase(it);
  }
  if (!entry.spilled) {
    release_device_bytes(state(entry.tenant), entry.bytes);
  }
}

void Service::on_evict(BufferId buffer, DomainId domain,
                       std::size_t /*bytes*/) noexcept {
  // Runs under the runtime's governor lock: must not block or reenter the
  // runtime. Refund what was actually charged, not the governor's view.
  const std::scoped_lock lock(residency_mutex_);
  const auto it = residency_.find({buffer.value, domain.value});
  if (it == residency_.end() || it->second.spilled) {
    return;  // not session-charged, or a double notification
  }
  it->second.spilled = true;
  try {
    release_device_bytes(state(it->second.tenant), it->second.bytes);
  } catch (...) {
    // The ledger is already guarded by Errc::internal elsewhere; an evict
    // notification must not throw through the governor.
  }
}

void Service::on_refetch(BufferId buffer, DomainId domain,
                         std::size_t /*bytes*/) {
  const std::scoped_lock lock(residency_mutex_);
  const auto it = residency_.find({buffer.value, domain.value});
  if (it == residency_.end() || !it->second.spilled) {
    return;  // not session-charged, or never evicted: nothing to re-charge
  }
  // Throwing here (quota_exceeded) vetoes the refetch and fails the action
  // that demanded it — a spilled tenant cannot sneak back over its quota.
  charge_device_bytes(state(it->second.tenant), it->second.bytes);
  it->second.spilled = false;
}

}  // namespace hs::service
