#pragma once

// Session: one client context inside a tenant.
//
// A Session owns logical streams and a named buffer namespace of its
// own; nothing it creates is visible to (or destroyable by) another
// session. All of a tenant's sessions share the tenant's quotas and its
// fair-share weight — the session is the unit of client *state*, the
// tenant is the unit of *policy*. Every stream a session creates is
// bound to (tenant, session) in the runtime, so enqueues through any
// API layer — these wrappers, AppApi apps handed a bound AppConfig,
// graph replay of a session capture — are tagged, counted into the
// tenant's stats slice, and pass the service's admission hook.
//
// Sessions are single-client objects: one session is driven by one
// thread at a time (many sessions concurrently is the multi-tenant
// point). close() drains the session's streams and releases everything
// it owns; the destructor closes as a backstop.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/runtime.hpp"
#include "graph/capture.hpp"
#include "service/service.hpp"

namespace hs::service {

class Session final {
 public:
  ~Session();  ///< closes if close() was never called

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t tenant() const noexcept { return tenant_; }
  [[nodiscard]] const std::string& tenant_name() const;
  [[nodiscard]] Runtime& runtime() noexcept { return service_.runtime(); }
  [[nodiscard]] Service& service() noexcept { return service_; }

  // --- Streams ------------------------------------------------------------
  /// Creates a stream owned by this session (counted against the
  /// tenant's max_streams quota) and binds it to (tenant, session).
  StreamId stream_create(DomainId domain, const CpuMask& mask,
                         std::optional<OrderPolicy> policy = std::nullopt);
  /// Brings an externally created stream into the session: quota-charged,
  /// bound, owned (destroyed at close). Used by AppApi-driven clients.
  void adopt_stream(StreamId stream);
  void stream_destroy(StreamId stream);  ///< must be owned and idle
  [[nodiscard]] const std::vector<StreamId>& streams() const noexcept {
    return streams_;
  }

  // --- Named buffer namespace --------------------------------------------
  /// Registers [base, base+size) under `name` in this session's private
  /// namespace. Distinct sessions may reuse the same name freely.
  BufferId buffer_create(std::string name, void* base, std::size_t size,
                         BufferProps props = {});
  [[nodiscard]] BufferId buffer(std::string_view name) const;
  [[nodiscard]] bool has_buffer(std::string_view name) const noexcept;
  /// Instantiates the named buffer in `domain`; non-host incarnations are
  /// charged against the tenant's max_device_resident_bytes quota.
  void buffer_instantiate(std::string_view name, DomainId domain);
  void buffer_deinstantiate(std::string_view name, DomainId domain);
  void buffer_destroy(std::string_view name);

  // --- Actions (ownership-checked passthroughs) --------------------------
  std::shared_ptr<EventState> enqueue_compute(
      StreamId stream, ComputePayload payload,
      std::span<const OperandRef> operands);
  std::shared_ptr<EventState> enqueue_transfer(StreamId stream,
                                               const void* proxy,
                                               std::size_t len, XferDir dir);
  std::shared_ptr<EventState> enqueue_transfer_from(StreamId stream,
                                                    const void* proxy,
                                                    std::size_t len,
                                                    DomainId peer);
  std::shared_ptr<EventState> enqueue_event_wait(
      StreamId stream, std::shared_ptr<EventState> event,
      std::span<const OperandRef> operands = {});
  std::shared_ptr<EventState> enqueue_signal(
      StreamId stream, std::span<const OperandRef> operands = {});

  /// Drains this session's streams only (not the whole runtime).
  void synchronize();

  // --- Capture ------------------------------------------------------------
  /// Starts a graph capture over a subset of this session's own streams
  /// (all of them by default). Ownership is validated so one session can
  /// never record another session's enqueues; the runtime's
  /// one-active-capture rule still applies across sessions. Replay of the
  /// finished graph through these streams is tagged and admission-gated
  /// exactly like eager enqueues.
  [[nodiscard]] std::unique_ptr<graph::GraphCapture> begin_capture();
  [[nodiscard]] std::unique_ptr<graph::GraphCapture> begin_capture(
      std::span<const StreamId> streams);

  /// Fills a config struct's tenant/session fields (AppConfig,
  /// MatmulConfig, ...) so apps run as clients of this session.
  template <class Config>
  [[nodiscard]] Config bound(Config config) const {
    config.tenant = tenant_;
    config.session = id_;
    return config;
  }

  /// Drains in-flight work, destroys owned streams and buffers, and
  /// releases the quotas they held. Idempotent.
  void close();
  /// Cancels undispatched work on every owned stream (stream_cancel),
  /// then closes. Returns the number of actions cancelled.
  std::size_t abort();

 private:
  friend class Service;
  Session(Service& service, std::uint32_t tenant, std::uint32_t id);

  void require_owned(StreamId stream) const;
  [[nodiscard]] BufferId named(std::string_view name) const;

  Service& service_;
  std::uint32_t tenant_ = 0;
  std::uint32_t id_ = 0;
  bool closed_ = false;
  std::vector<StreamId> streams_;
  std::unordered_set<StreamId> owned_;
  std::map<std::string, BufferId, std::less<>> buffers_;
  /// Device domains each named buffer is instantiated in via this
  /// session (what we charged, so close() can release exactly that).
  std::unordered_map<BufferId, std::vector<DomainId>> resident_;
};

}  // namespace hs::service
