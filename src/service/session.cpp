#include "service/session.hpp"

#include <algorithm>
#include <utility>

namespace hs::service {

Session::Session(Service& service, std::uint32_t tenant, std::uint32_t id)
    : service_(service), tenant_(tenant), id_(id) {}

Session::~Session() {
  try {
    close();
  } catch (...) {
    // Destructor backstop: close() already swallows per-resource drain
    // errors; anything else must not escape a destructor.
  }
}

const std::string& Session::tenant_name() const {
  return service_.tenant_config(tenant_).name;
}

// --- Streams ---------------------------------------------------------------

StreamId Session::stream_create(DomainId domain, const CpuMask& mask,
                                std::optional<OrderPolicy> policy) {
  require(!closed_, "session is closed", Errc::not_initialized);
  Service::TenantState& t = service_.state(tenant_);
  service_.charge_stream(t);
  StreamId stream;
  try {
    stream = runtime().stream_create(domain, mask, policy);
  } catch (...) {
    service_.release_stream(t);
    throw;
  }
  runtime().stream_bind_tenant(stream, tenant_, id_);
  streams_.push_back(stream);
  owned_.insert(stream);
  return stream;
}

void Session::adopt_stream(StreamId stream) {
  require(!closed_, "session is closed", Errc::not_initialized);
  require(owned_.count(stream) == 0, "stream already owned by this session");
  require(runtime().stream_tenant(stream) == 0,
          "stream is already bound to a tenant", Errc::already_initialized);
  Service::TenantState& t = service_.state(tenant_);
  service_.charge_stream(t);
  runtime().stream_bind_tenant(stream, tenant_, id_);
  streams_.push_back(stream);
  owned_.insert(stream);
}

void Session::stream_destroy(StreamId stream) {
  require_owned(stream);
  runtime().stream_destroy(stream);  // throws if not idle; ownership kept
  owned_.erase(stream);
  std::erase(streams_, stream);
  service_.release_stream(service_.state(tenant_));
}

// --- Named buffer namespace ------------------------------------------------

BufferId Session::buffer_create(std::string name, void* base,
                                std::size_t size, BufferProps props) {
  require(!closed_, "session is closed", Errc::not_initialized);
  require(!name.empty(), "buffer name must be non-empty");
  require(buffers_.find(name) == buffers_.end(),
          "buffer name already in use in this session",
          Errc::already_initialized);
  const BufferId id = runtime().buffer_create(base, size, props);
  buffers_.emplace(std::move(name), id);
  return id;
}

BufferId Session::buffer(std::string_view name) const { return named(name); }

bool Session::has_buffer(std::string_view name) const noexcept {
  return buffers_.find(name) != buffers_.end();
}

void Session::buffer_instantiate(std::string_view name, DomainId domain) {
  const BufferId id = named(name);
  if (domain == kHostDomain) {
    runtime().buffer_instantiate(id, domain);
    return;
  }
  const std::size_t size = runtime().buffer_size(id);
  // charge_resident is a no-op (returns false) when the incarnation is
  // already charged — re-instantiating a live incarnation must not charge
  // twice, and re-instantiating a spilled one charges exactly once.
  const bool charged = service_.charge_resident(tenant_, id, domain, size);
  try {
    runtime().buffer_instantiate(id, domain);
  } catch (...) {
    if (charged) {
      service_.forget_resident(id, domain);
    }
    throw;
  }
  auto& domains = resident_[id];
  if (std::find(domains.begin(), domains.end(), domain) == domains.end()) {
    domains.push_back(domain);
  }
}

void Session::buffer_deinstantiate(std::string_view name, DomainId domain) {
  const BufferId id = named(name);
  // May throw data_loss if dirty bytes exist only there — the quota must
  // not be refunded for an incarnation the runtime refused to drop.
  runtime().buffer_deinstantiate(id, domain);
  if (domain == kHostDomain) {
    return;
  }
  service_.forget_resident(id, domain);
  if (const auto it = resident_.find(id); it != resident_.end()) {
    if (const auto pos =
            std::find(it->second.begin(), it->second.end(), domain);
        pos != it->second.end()) {
      it->second.erase(pos);
    }
    if (it->second.empty()) {
      resident_.erase(it);
    }
  }
}

void Session::buffer_destroy(std::string_view name) {
  const BufferId id = named(name);
  if (const auto it = resident_.find(id); it != resident_.end()) {
    for (const DomainId domain : it->second) {
      service_.forget_resident(id, domain);
    }
    resident_.erase(it);
  }
  runtime().buffer_destroy(id);  // releases the runtime incarnations
  buffers_.erase(buffers_.find(name));
}

// --- Actions ---------------------------------------------------------------

std::shared_ptr<EventState> Session::enqueue_compute(
    StreamId stream, ComputePayload payload,
    std::span<const OperandRef> operands) {
  require_owned(stream);
  return runtime().enqueue_compute(stream, std::move(payload), operands);
}

std::shared_ptr<EventState> Session::enqueue_transfer(StreamId stream,
                                                      const void* proxy,
                                                      std::size_t len,
                                                      XferDir dir) {
  require_owned(stream);
  return runtime().enqueue_transfer(stream, proxy, len, dir);
}

std::shared_ptr<EventState> Session::enqueue_transfer_from(StreamId stream,
                                                           const void* proxy,
                                                           std::size_t len,
                                                           DomainId peer) {
  require_owned(stream);
  return runtime().enqueue_transfer_from(stream, proxy, len, peer);
}

std::shared_ptr<EventState> Session::enqueue_event_wait(
    StreamId stream, std::shared_ptr<EventState> event,
    std::span<const OperandRef> operands) {
  require_owned(stream);
  return runtime().enqueue_event_wait(stream, std::move(event), operands);
}

std::shared_ptr<EventState> Session::enqueue_signal(
    StreamId stream, std::span<const OperandRef> operands) {
  require_owned(stream);
  return runtime().enqueue_signal(stream, operands);
}

void Session::synchronize() {
  for (const StreamId stream : streams_) {
    runtime().stream_synchronize(stream);
  }
}

// --- Capture ---------------------------------------------------------------

std::unique_ptr<graph::GraphCapture> Session::begin_capture() {
  return begin_capture(std::span<const StreamId>(streams_));
}

std::unique_ptr<graph::GraphCapture> Session::begin_capture(
    std::span<const StreamId> streams) {
  require(!closed_, "session is closed", Errc::not_initialized);
  require(!streams.empty(), "capture needs at least one stream");
  for (const StreamId stream : streams) {
    require_owned(stream);
  }
  return std::make_unique<graph::GraphCapture>(runtime(), streams);
}

// --- Teardown --------------------------------------------------------------

void Session::close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  // Drain first. A pending async error on one stream (device loss, link
  // failure) must not abandon the teardown of the rest.
  for (const StreamId stream : streams_) {
    try {
      runtime().stream_synchronize(stream);
    } catch (...) {
    }
  }
  Service::TenantState& t = service_.state(tenant_);
  for (const StreamId stream : streams_) {
    try {
      runtime().stream_destroy(stream);
    } catch (...) {
    }
    service_.release_stream(t);
  }
  streams_.clear();
  owned_.clear();
  for (const auto& [name, id] : buffers_) {
    if (const auto it = resident_.find(id); it != resident_.end()) {
      for (const DomainId domain : it->second) {
        try {
          service_.forget_resident(id, domain);
        } catch (...) {
          // A refund mismatch is reported as Errc::internal on the normal
          // paths; teardown presses on so the rest is still released.
        }
      }
    }
    try {
      runtime().buffer_destroy(id);
    } catch (...) {
    }
  }
  buffers_.clear();
  resident_.clear();
  t.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  service_.open_sessions_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t Session::abort() {
  std::size_t cancelled = 0;
  if (!closed_) {
    for (const StreamId stream : streams_) {
      cancelled += runtime().stream_cancel(stream);
    }
  }
  close();
  return cancelled;
}

// --- Helpers ---------------------------------------------------------------

void Session::require_owned(StreamId stream) const {
  require(!closed_, "session is closed", Errc::not_initialized);
  require(owned_.count(stream) != 0, "stream is not owned by this session",
          Errc::not_found);
}

BufferId Session::named(std::string_view name) const {
  const auto it = buffers_.find(name);
  require(it != buffers_.end(),
          "no buffer named '" + std::string(name) + "' in this session",
          Errc::not_found);
  return it->second;
}

}  // namespace hs::service
