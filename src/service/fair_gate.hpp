#pragma once

// Weighted-fair admission gate for multi-tenant service mode.
//
// Two layers, deliberately separated:
//
//   * GateCore is the pure scheduler: a deterministic, single-threaded
//     weighted-deficit-round-robin (or FIFO, the unfair baseline) queue
//     of admission tickets. No locks, no time — push tickets, pop grants.
//     Its determinism is what makes fairness *testable*: the unit tests
//     and the bench_multitenant isolation experiment drive it directly
//     in logical service slots, so the CI gate on victim-p99 shift is
//     exact, not a wall-clock race.
//   * FairGate wraps a GateCore in a mutex/condvar and a bounded permit
//     count. A tenant's enqueue holds a permit only across the runtime
//     admission call itself (Runtime::admit — bounded, never blocks on
//     other admissions or on completions), so the gate is deadlock-free
//     by construction on both executors: permit holders always release
//     in finite time without needing runtime progress.
//
// Starvation freedom (the DESIGN.md argument, summarized): each ring
// visit adds quantum*weight to a backlogged tenant's deficit, so its
// head ticket of cost c is granted after at most ceil(c / (q*w)) visits,
// and between two consecutive visits every other tenant serves at most
// q*w_i + c_max cost units. A victim's wait is therefore bounded by a
// constant independent of any aggressor's backlog depth — the property
// the FIFO policy lacks (its wait grows linearly with the flood).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"

namespace hs::service {

enum class FairPolicy {
  fifo,          ///< single arrival-order queue (the unfair baseline)
  weighted_drr,  ///< weighted deficit round robin across tenants
};

/// Deterministic admission scheduler. Not thread-safe: callers (FairGate,
/// tests, the bench's logical-slot experiment) serialize access.
class GateCore {
 public:
  /// `quantum` is the deficit added per ring visit per unit of tenant
  /// weight, in cost units (see Service: cost = 1 + bytes/4096).
  explicit GateCore(FairPolicy policy, std::uint64_t quantum = 8);

  /// Registers a tenant (ids are 1-based and must arrive in order).
  void add_tenant(std::uint32_t tenant, std::uint32_t weight);

  /// Queues one admission ticket of `cost` units for `tenant`.
  void push(std::uint32_t tenant, std::uint64_t ticket, std::uint64_t cost);

  struct Grant {
    std::uint32_t tenant = 0;
    std::uint64_t ticket = 0;
  };
  /// Grants the next ticket in policy order; nullopt when empty.
  [[nodiscard]] std::optional<Grant> pop();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Queued tickets of one tenant.
  [[nodiscard]] std::size_t backlog(std::uint32_t tenant) const;

 private:
  struct Ticket {
    std::uint64_t ticket = 0;
    std::uint64_t cost = 0;
  };
  struct TenantQ {
    std::uint32_t weight = 1;
    std::uint64_t deficit = 0;
    std::deque<Ticket> queue;
    bool in_ring = false;
    /// True until this ring visit's quantum top-up has been applied —
    /// exactly one top-up per visit is what makes the shares weighted
    /// (topping up whenever the deficit runs dry would let the front
    /// tenant monopolize the ring, collapsing DRR into FIFO).
    bool fresh = false;
  };

  FairPolicy policy_;
  std::uint64_t quantum_;
  std::vector<TenantQ> tenants_;                        // by tenant id - 1
  std::deque<std::uint32_t> ring_;                      // active tenants
  std::deque<std::pair<std::uint32_t, Ticket>> fifo_;   // fifo policy
  std::size_t size_ = 0;
};

/// Thread-safe blocking gate: acquire() waits for the caller's fair turn
/// (bounded by `permits` concurrent admissions), release() hands the
/// permit to the next grant. See the header comment for why holding a
/// permit only across Runtime::admit keeps this deadlock-free.
class FairGate {
 public:
  FairGate(FairPolicy policy, std::uint64_t quantum, std::size_t permits);

  void add_tenant(std::uint32_t tenant, std::uint32_t weight);

  /// Blocks until this tenant's ticket is granted. Returns true when the
  /// caller had to queue (a contended pass), false on the fast path.
  bool acquire(std::uint32_t tenant, std::uint64_t cost);

  /// Releases the permit taken by a matching acquire().
  void release();

 private:
  /// Grants queued tickets while permits are free (mu_ held). Returns
  /// whether any ticket was granted (callers then notify).
  bool serve_locked();

  std::mutex mu_;
  std::condition_variable cv_;
  GateCore core_;
  std::size_t permits_;
  std::size_t in_service_ = 0;
  std::uint64_t next_ticket_ = 0;
  std::unordered_set<std::uint64_t> granted_;
};

}  // namespace hs::service
