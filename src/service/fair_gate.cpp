#include "service/fair_gate.hpp"

namespace hs::service {

GateCore::GateCore(FairPolicy policy, std::uint64_t quantum)
    : policy_(policy), quantum_(quantum) {
  require(quantum_ > 0, "gate quantum must be positive");
}

void GateCore::add_tenant(std::uint32_t tenant, std::uint32_t weight) {
  require(tenant == tenants_.size() + 1,
          "gate tenants register in id order (1-based)");
  require(weight > 0, "tenant weight must be positive");
  tenants_.push_back(TenantQ{weight, 0, {}, false});
}

void GateCore::push(std::uint32_t tenant, std::uint64_t ticket,
                    std::uint64_t cost) {
  require(tenant >= 1 && tenant <= tenants_.size(), "unknown gate tenant",
          Errc::not_found);
  ++size_;
  if (policy_ == FairPolicy::fifo) {
    fifo_.emplace_back(tenant, Ticket{ticket, cost});
    return;
  }
  TenantQ& q = tenants_[tenant - 1];
  q.queue.push_back(Ticket{ticket, cost});
  if (!q.in_ring) {
    // Re-activation starts with a clean deficit: an idle tenant earns no
    // credit while it has nothing queued (standard DRR — otherwise a
    // long-idle tenant could burst past everyone on return).
    q.in_ring = true;
    q.deficit = 0;
    q.fresh = true;
    ring_.push_back(tenant);
  }
}

std::optional<GateCore::Grant> GateCore::pop() {
  if (size_ == 0) {
    return std::nullopt;
  }
  if (policy_ == FairPolicy::fifo) {
    const auto [tenant, ticket] = fifo_.front();
    fifo_.pop_front();
    --size_;
    return Grant{tenant, ticket.ticket};
  }
  for (;;) {
    const std::uint32_t tenant = ring_.front();
    TenantQ& q = tenants_[tenant - 1];
    if (q.queue.empty()) {
      q.in_ring = false;
      q.deficit = 0;
      ring_.pop_front();
      continue;
    }
    if (q.fresh) {
      q.deficit += quantum_ * q.weight;  // one top-up per ring visit
      q.fresh = false;
    }
    if (q.deficit < q.queue.front().cost) {
      // This visit's credit is spent: rotate on, keeping the accumulated
      // deficit — the head ticket is granted after at most
      // ceil(cost/(q*w)) visits, which is the starvation-freedom bound.
      q.fresh = true;
      ring_.push_back(tenant);
      ring_.pop_front();
      continue;
    }
    const Ticket t = q.queue.front();
    q.queue.pop_front();
    q.deficit -= t.cost;
    --size_;
    if (q.queue.empty()) {
      q.in_ring = false;
      q.deficit = 0;
      ring_.pop_front();
    }
    return Grant{tenant, t.ticket};
  }
}

std::size_t GateCore::backlog(std::uint32_t tenant) const {
  require(tenant >= 1 && tenant <= tenants_.size(), "unknown gate tenant",
          Errc::not_found);
  if (policy_ == FairPolicy::fifo) {
    std::size_t n = 0;
    for (const auto& [t, ticket] : fifo_) {
      n += t == tenant ? 1 : 0;
    }
    return n;
  }
  return tenants_[tenant - 1].queue.size();
}

FairGate::FairGate(FairPolicy policy, std::uint64_t quantum,
                   std::size_t permits)
    : core_(policy, quantum), permits_(permits) {
  require(permits_ > 0, "gate needs at least one permit");
}

void FairGate::add_tenant(std::uint32_t tenant, std::uint32_t weight) {
  const std::scoped_lock lock(mu_);
  core_.add_tenant(tenant, weight);
}

bool FairGate::acquire(std::uint32_t tenant, std::uint64_t cost) {
  std::unique_lock lock(mu_);
  if (in_service_ < permits_ && core_.empty()) {
    ++in_service_;
    return false;  // uncontended fast path: no queue, no fairness needed
  }
  const std::uint64_t ticket = next_ticket_++;
  core_.push(tenant, ticket, cost);
  const bool granted_others = serve_locked();
  if (granted_.erase(ticket) != 0) {
    // serve_locked picked us immediately (a permit was free).
    if (granted_others) {
      lock.unlock();
      cv_.notify_all();
    }
    return false;
  }
  if (granted_others) {
    cv_.notify_all();
  }
  cv_.wait(lock, [&] { return granted_.count(ticket) != 0; });
  granted_.erase(ticket);
  return true;
}

void FairGate::release() {
  bool granted = false;
  {
    const std::scoped_lock lock(mu_);
    require(in_service_ > 0, "gate release without acquire", Errc::internal);
    --in_service_;
    granted = serve_locked();
  }
  if (granted) {
    cv_.notify_all();
  }
}

bool FairGate::serve_locked() {
  bool any = false;
  while (in_service_ < permits_ && !core_.empty()) {
    const std::optional<GateCore::Grant> g = core_.pop();
    ++in_service_;
    granted_.insert(g->ticket);
    any = true;
  }
  return any;
}

}  // namespace hs::service
