#pragma once

// Service: the multi-tenant front door over one shared Runtime.
//
// Borrowing the kspp topology_builder shape — named app instances each
// building isolated topologies over shared infrastructure — a Service
// registers named tenants (weight + quotas), opens numbered Sessions
// for them, and installs itself as the Runtime's AdmissionHook so every
// enqueue on a tenant-bound stream is quota-checked and passes the
// weighted-fair gate, no matter which API layer issued it (session
// wrappers, AppApi apps, graph replay, the compat layer).
//
// Composition with the PR 4 sharded admission path: the hook runs
// *before* any stream or shard lock is taken, and the gate permit spans
// only the bounded Runtime::admit call — so tenants blocked on their
// fair turn hold nothing the sharded path needs, and with the gate off
// the hot path is untouched except for one atomic load per enqueue.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <utility>

#include "core/runtime.hpp"
#include "service/fair_gate.hpp"
#include "service/tenant.hpp"

namespace hs::service {

class Session;

struct ServiceConfig {
  /// Weighted-fair turn taking across tenants at admission. Off = no
  /// gate (quotas still enforced): the bench's unfair baseline.
  bool fair_admission = true;
  FairPolicy policy = FairPolicy::weighted_drr;
  /// Deficit per gate-round per unit weight, in cost units
  /// (cost = 1 + transfer_bytes/4096).
  std::uint64_t quantum = 8;
  /// Concurrent admissions allowed through the gate. 1 = strict fair
  /// ordering under contention; larger trades ordering strictness for
  /// admission parallelism.
  std::size_t permits = 1;
};

class Service final : private AdmissionHook {
 public:
  explicit Service(Runtime& runtime, ServiceConfig config = {});
  ~Service() override;  ///< detaches the hook; sessions must be closed

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

  /// Registers a tenant; returns its runtime tenant id (1-based).
  std::uint32_t tenant_create(TenantConfig config);
  [[nodiscard]] std::size_t tenant_count() const;
  [[nodiscard]] const TenantConfig& tenant_config(std::uint32_t tenant) const;
  /// Id of the tenant named `name`; throws not_found otherwise.
  [[nodiscard]] std::uint32_t tenant_id(std::string_view name) const;
  /// Combined service + runtime-slice stats snapshot.
  [[nodiscard]] TenantStats tenant_stats(std::uint32_t tenant) const;

  /// Opens an isolated session for `tenant`. The Session's lifetime is
  /// the client's: close() (or destruction) drains and releases
  /// everything it owns. Sessions of one tenant share its quotas.
  [[nodiscard]] std::unique_ptr<Session> open_session(std::uint32_t tenant);
  [[nodiscard]] std::unique_ptr<Session> open_session(std::string_view tenant);

 private:
  friend class Session;

  /// Per-tenant service state. Deque entries are pointer-stable;
  /// `mu` guards the quota accounting (leaf lock).
  struct TenantState {
    TenantConfig config;
    std::uint32_t id = 0;
    mutable std::mutex mu;
    std::size_t streams_in_use = 0;
    std::size_t bytes_in_flight = 0;
    std::size_t device_resident_bytes = 0;
    std::atomic<std::uint64_t> quota_rejections{0};
    std::atomic<std::uint64_t> quota_stalls{0};
    std::atomic<std::uint64_t> gate_passes{0};
    std::atomic<std::uint64_t> gate_waits{0};
    std::atomic<std::uint64_t> sessions_opened{0};
    std::atomic<std::uint64_t> sessions_closed{0};
  };

  [[nodiscard]] TenantState& state(std::uint32_t tenant);
  [[nodiscard]] const TenantState& state(std::uint32_t tenant) const;

  // AdmissionHook: quota check (block or fail) then fair-turn acquire.
  void before_admit(std::uint32_t tenant, ActionType type,
                    std::size_t bytes) override;
  // Releases the gate permit once the admission call returned.
  void after_admit(std::uint32_t tenant, ActionType type) noexcept override;
  // Returns in-flight bytes at action completion.
  void on_complete(std::uint32_t tenant, ActionType type,
                   std::size_t bytes) noexcept override;
  // Out-of-core callbacks from the runtime's memory governor. An evicted
  // incarnation stops counting against its tenant's device-resident quota
  // (the refund lands here, at eviction time, so the quota tracks what is
  // actually resident); a demand refetch re-charges the quota and may veto
  // by throwing quota_exceeded, which fails the triggering action.
  void on_evict(BufferId buffer, DomainId domain,
                std::size_t bytes) noexcept override;
  void on_refetch(BufferId buffer, DomainId domain,
                  std::size_t bytes) override;

  /// Whether this action type takes a gate turn (computes and transfers:
  /// the actions that occupy device time. Syncs pass ungated — they are
  /// control flow, and gating an event_wait could make its permit wait
  /// on a signal stuck behind the gate).
  [[nodiscard]] static bool gated_type(ActionType type) noexcept {
    return type == ActionType::compute || type == ActionType::transfer;
  }
  [[nodiscard]] static std::uint64_t gate_cost(std::size_t bytes) noexcept {
    return 1 + bytes / 4096;
  }

  // Session-side accounting (quota enforcement lives with the service so
  // all of a tenant's sessions share one budget).
  void charge_stream(TenantState& t);          ///< throws quota_exceeded
  void release_stream(TenantState& t) noexcept;
  void charge_device_bytes(TenantState& t, std::size_t bytes);
  /// Throws Errc::internal (asserts in debug) if the refund exceeds the
  /// tenant's charged total: that is always an accounting bug, and the
  /// old silent clamp let double-releases mint free quota.
  void release_device_bytes(TenantState& t, std::size_t bytes);

  /// Device-residency registry entry, keyed (buffer, domain), so eviction
  /// refunds and refetch re-charges land on the owning tenant. `spilled`
  /// entries have already been refunded at eviction time.
  struct ResidentEntry {
    std::uint32_t tenant = 0;
    std::size_t bytes = 0;
    bool spilled = false;
  };
  /// Charges the tenant's quota and records residency; returns false (no
  /// charge taken) when the incarnation is already charged. May throw
  /// quota_exceeded.
  bool charge_resident(std::uint32_t tenant, BufferId buffer, DomainId domain,
                       std::size_t bytes);
  /// Drops the registry entry, refunding the quota unless the incarnation
  /// was spilled (its refund already happened in on_evict).
  void forget_resident(BufferId buffer, DomainId domain);

  Runtime& runtime_;
  ServiceConfig config_;
  mutable std::shared_mutex tenants_mutex_;  ///< guards the deque + names
  std::deque<TenantState> tenants_;          ///< by tenant id - 1
  /// Guards residency_. Order: below the runtime's governor lock (on_evict
  /// and on_refetch run with it held), above tenants_mutex_ and t.mu.
  mutable std::mutex residency_mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, ResidentEntry>
      residency_;  ///< keyed (buffer.value, domain.value)
  std::unique_ptr<FairGate> gate_;           ///< null when fair_admission off
  std::atomic<std::uint32_t> next_session_{1};
  std::atomic<std::size_t> open_sessions_{0};
};

}  // namespace hs::service
