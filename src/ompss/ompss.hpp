#pragma once

// OmpSs-style dataflow runtime layered over the streaming core (paper
// §II "OmpSs on top of hStreams" and §IV).
//
// OmpSs is a task-based model: the user declares tasks with in/out/inout
// data, and the runtime
//   * detects dependences dynamically (last-writer / reader tracking per
//     registered data region),
//   * "allocates data automatically on the device" and inserts the
//     transfers tasks need, staging device-to-device traffic through the
//     host,
//   * "transparently manages ... streams and events", issuing everything
//     asynchronously and scheduling across the available devices.
//
// The backend style reproduces the paper's comparison:
//   * BackendStyle::hstreams — relaxed-FIFO streams; same-stream
//     dependences ride on the runtime's operand analysis for free, and
//     cross-stream waits are scoped to the region's byte range.
//   * BackendStyle::cuda_streams — strict-FIFO streams; every
//     cross-stream dependence needs explicit event machinery whose wait
//     stalls the whole consumer stream, and each edge pays a modeled
//     event-management cost. "For CUDA Streams, OmpSs needs to
//     explicitly compute and enforce dependences, whereas this is not
//     necessary within hStreams" — the source of the paper's 1.45x.
//
// Per-task dynamic instantiation/scheduling overhead is charged through
// ComputePayload::layered_overhead_s (§III: OmpSs induces 15-50% on top
// of hStreams "as a cost of the conveniences it offers").

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace hs::ompss {

enum class BackendStyle { hstreams, cuda_streams };

struct OmpssConfig {
  BackendStyle backend = BackendStyle::hstreams;
  std::size_t streams_per_device = 4;
  /// OmpSs in the paper is evaluated in pure offload mode ("OmpSs has
  /// only been tested in offload mode and for only one MIC").
  bool use_host = false;
  /// Modeled per-task instantiation + dynamic-scheduling cost.
  double task_overhead_s = 12e-6;
  /// Modeled per-dependence-edge cost (event create/record/destroy) on
  /// the cuda_streams backend.
  double edge_overhead_s = 3e-6;
};

class OmpssRuntime {
 public:
  OmpssRuntime(Runtime& runtime, OmpssConfig config);

  /// Registers a host data region the dependence tracker manages. Tasks'
  /// operands must fall inside registered regions; dependences and data
  /// validity are tracked per region (whole-object granularity, as in
  /// OmpSs).
  void register_region(void* base, std::size_t bytes);

  /// Submits a task; `deps` declare its data accesses in host (proxy)
  /// addresses. The runtime picks a device and stream, inserts any
  /// transfers, and returns immediately.
  void task(std::string kernel, double flops,
            std::function<void(TaskContext&)> body,
            std::vector<OperandRef> deps);

  /// Waits for all submitted tasks.
  void taskwait();

  /// Ensures the host copy of the region containing `base` is current
  /// (enqueues the write-back transfer and waits for it).
  void fetch(void* base);

  /// Write back every dirty region and wait.
  void fetch_all();

  struct Stats {
    std::size_t tasks = 0;
    std::size_t transfers = 0;
    std::size_t cross_stream_edges = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] Runtime& core() noexcept { return runtime_; }

 private:
  struct Region {
    BufferId buffer;
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    DomainId valid_on = kHostDomain;  ///< where the freshest copy lives
    /// Completion of the action that produced the freshest copy, and the
    /// stream it ran in (invalid stream = host-side original data).
    std::shared_ptr<EventState> last_write;
    StreamId last_write_stream;
    bool has_writer = false;
    /// Readers since the last write (for WAR edges).
    std::vector<std::pair<std::shared_ptr<EventState>, StreamId>> readers;
  };

  [[nodiscard]] Region& region_containing(const void* ptr, std::size_t len);
  /// Chooses the execution stream: locality first (device holding the
  /// most operand bytes), round-robin otherwise.
  [[nodiscard]] StreamId pick_stream(const std::vector<OperandRef>& deps);
  /// Makes `region` valid on `domain`, enqueueing transfers (and their
  /// ordering waits) on `stream`. Returns the number of cross-stream
  /// edges added.
  std::size_t stage_region(Region& region, DomainId domain, StreamId stream);
  /// Adds a dependence edge from `ev` (completed in `from`) to `stream`.
  void add_edge(StreamId stream, const std::shared_ptr<EventState>& ev,
                StreamId from, const Region& region);

  Runtime& runtime_;
  OmpssConfig config_;
  std::vector<StreamId> streams_;                  // all scheduling slots
  std::map<std::uint32_t, DomainId> stream_domain_;  // stream -> domain
  std::map<const std::byte*, Region> regions_;     // keyed by base
  std::size_t rr_cursor_ = 0;
  std::size_t pending_edges_ = 0;  // edges added while staging current task
  Stats stats_;
};

}  // namespace hs::ompss
