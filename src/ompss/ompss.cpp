#include "ompss/ompss.hpp"

#include <algorithm>

namespace hs::ompss {

OmpssRuntime::OmpssRuntime(Runtime& runtime, OmpssConfig config)
    : runtime_(runtime), config_(config) {
  const OrderPolicy policy = config.backend == BackendStyle::hstreams
                                 ? OrderPolicy::relaxed_fifo
                                 : OrderPolicy::strict_fifo;
  auto add_streams = [&](DomainId domain) {
    const std::size_t threads = runtime.domain(domain).hw_threads();
    const std::size_t count = std::min(config.streams_per_device, threads);
    for (const CpuMask& mask : CpuMask::partition(threads, count)) {
      const StreamId s = runtime.stream_create(domain, mask, policy);
      streams_.push_back(s);
      stream_domain_[s.value] = domain;
    }
  };
  for (std::size_t d = 1; d < runtime.domain_count(); ++d) {
    add_streams(DomainId{static_cast<std::uint32_t>(d)});
  }
  if (config.use_host || streams_.size() == 0) {
    add_streams(kHostDomain);
  }
  require(!streams_.empty(), "OmpSs runtime has no execution streams");
}

void OmpssRuntime::register_region(void* base, std::size_t bytes) {
  Region region;
  region.buffer = runtime_.buffer_create(base, bytes);
  region.base = static_cast<std::byte*>(base);
  region.bytes = bytes;
  // "OmpSs allocates data automatically on the device": instantiate
  // everywhere up front so transfers never fail.
  for (std::size_t d = 1; d < runtime_.domain_count(); ++d) {
    runtime_.buffer_instantiate(region.buffer,
                                DomainId{static_cast<std::uint32_t>(d)});
  }
  regions_.emplace(region.base, std::move(region));
}

OmpssRuntime::Region& OmpssRuntime::region_containing(const void* ptr,
                                                      std::size_t len) {
  const auto* p = static_cast<const std::byte*>(ptr);
  auto it = regions_.upper_bound(p);
  require(it != regions_.begin(), "operand not in a registered region",
          Errc::not_found);
  Region& region = std::prev(it)->second;
  require(p + len <= region.base + region.bytes,
          "operand escapes its region", Errc::out_of_range);
  return region;
}

StreamId OmpssRuntime::pick_stream(const std::vector<OperandRef>& deps) {
  // Locality: tally operand bytes per domain that already holds them.
  // Only *read* operands attract a task — a pure output needs no data
  // where it runs, so it should not glue work to wherever the region
  // happens to sit (initially the host).
  std::map<std::uint32_t, std::size_t> bytes_on;
  for (const OperandRef& dep : deps) {
    if (dep.access == Access::out) {
      continue;
    }
    const Region& region = region_containing(dep.ptr, dep.len);
    bytes_on[region.valid_on.value] += dep.len;
  }
  DomainId best = kHostDomain;
  std::size_t best_bytes = 0;
  for (const auto& [dom, bytes] : bytes_on) {
    const DomainId domain{dom};
    // Only domains we can execute on count.
    const bool schedulable =
        std::any_of(streams_.begin(), streams_.end(), [&](StreamId s) {
          return stream_domain_.at(s.value) == domain;
        });
    if (schedulable && bytes > best_bytes) {
      best_bytes = bytes;
      best = domain;
    }
  }
  // Round-robin across the chosen domain's streams (or across all
  // streams when nothing is resident yet).
  std::vector<StreamId> candidates;
  for (const StreamId s : streams_) {
    if (best_bytes == 0 || stream_domain_.at(s.value) == best) {
      candidates.push_back(s);
    }
  }
  return candidates[rr_cursor_++ % candidates.size()];
}

void OmpssRuntime::add_edge(StreamId stream,
                            const std::shared_ptr<EventState>& ev,
                            StreamId from, const Region& region) {
  if (!ev || from == stream) {
    return;  // same stream: FIFO order already covers it
  }
  ++stats_.cross_stream_edges;
  ++pending_edges_;
  if (config_.backend == BackendStyle::hstreams) {
    // Scoped wait: only later actions touching this region stall.
    const OperandRef wops[] = {{region.base, region.bytes, Access::out}};
    (void)runtime_.enqueue_event_wait(stream, ev, wops);
  } else {
    // CUDA semantics: the wait stalls the entire stream.
    (void)runtime_.enqueue_event_wait(stream, ev);
  }
}

std::size_t OmpssRuntime::stage_region(Region& region, DomainId domain,
                                       StreamId stream) {
  // Safety note on WAR against *stale* incarnations: an inbound h2d may
  // overwrite a copy that earlier readers used without an explicit edge
  // to them. This is sound by transitivity: a copy's bytes can only
  // differ from the incoming ones if a writer ran in between, every
  // writer adds WAR edges to all readers since the previous write (see
  // task()), and the h2d chains after that writer through last_write.
  // With no intervening writer the overwrite is byte-identical.
  if (region.valid_on == domain) {
    return 0;
  }
  const std::size_t edges_before = pending_edges_;
  if (region.valid_on != kHostDomain && domain != kHostDomain) {
    // Device-to-device: one staged two-hop transfer on the target stream
    // (the executors pipeline its chunks), ordered after the holder's
    // last write. The staging hop refreshes the host copy as a side
    // effect, so the region is home on the host too afterwards.
    add_edge(stream, region.last_write, region.last_write_stream, region);
    region.last_write = runtime_.enqueue_transfer_from(
        stream, region.base, region.bytes, region.valid_on);
    region.last_write_stream = stream;
    ++stats_.transfers;
    region.valid_on = domain;
    return pending_edges_ - edges_before;
  }
  if (region.valid_on != kHostDomain) {
    // Write back from the holder to the host (the consumer is the host
    // itself).
    auto home = runtime_.enqueue_transfer(region.last_write_stream,
                                          region.base, region.bytes,
                                          XferDir::sink_to_src);
    ++stats_.transfers;
    region.valid_on = kHostDomain;
    region.last_write = std::move(home);
    // The write-back stays attributed to its original stream.
  }
  if (domain != kHostDomain) {
    add_edge(stream, region.last_write, region.last_write_stream, region);
    region.last_write =
        runtime_.enqueue_transfer(stream, region.base, region.bytes,
                                  XferDir::src_to_sink);
    region.last_write_stream = stream;
    ++stats_.transfers;
    region.valid_on = domain;
  }
  return pending_edges_ - edges_before;
}

void OmpssRuntime::task(std::string kernel, double flops,
                        std::function<void(TaskContext&)> body,
                        std::vector<OperandRef> deps) {
  const StreamId stream = pick_stream(deps);
  const DomainId domain = stream_domain_.at(stream.value);
  pending_edges_ = 0;

  // Stage data and wire dependences.
  for (const OperandRef& dep : deps) {
    Region& region = region_containing(dep.ptr, dep.len);
    // RAW/WAW: order after the last writer.
    (void)stage_region(region, domain, stream);
    add_edge(stream, region.last_write, region.last_write_stream, region);
    if (writes(dep.access)) {
      // WAR: order after every reader since the last write.
      for (const auto& [rev, rstream] : region.readers) {
        add_edge(stream, rev, rstream, region);
      }
    }
  }

  // Submit the compute.
  ComputePayload payload;
  payload.kernel = std::move(kernel);
  payload.flops = flops;
  payload.body = std::move(body);
  payload.layered_overhead_s =
      config_.task_overhead_s +
      (config_.backend == BackendStyle::cuda_streams
           ? static_cast<double>(pending_edges_) * config_.edge_overhead_s
           : 0.0);
  auto done = runtime_.enqueue_compute(stream, std::move(payload), deps);
  ++stats_.tasks;

  // Update the tracker.
  for (const OperandRef& dep : deps) {
    Region& region = region_containing(dep.ptr, dep.len);
    if (writes(dep.access)) {
      region.last_write = done;
      region.last_write_stream = stream;
      region.has_writer = true;
      region.readers.clear();
      region.valid_on = domain;
    } else {
      region.readers.emplace_back(done, stream);
    }
  }
}

void OmpssRuntime::taskwait() { runtime_.synchronize(); }

void OmpssRuntime::fetch(void* base) {
  Region& region = region_containing(base, 1);
  if (region.valid_on != kHostDomain) {
    auto home = runtime_.enqueue_transfer(region.last_write_stream,
                                          region.base, region.bytes,
                                          XferDir::sink_to_src);
    ++stats_.transfers;
    region.valid_on = kHostDomain;
    region.last_write = home;
    const std::shared_ptr<EventState> evs[] = {std::move(home)};
    runtime_.event_wait_host(evs);
  }
}

void OmpssRuntime::fetch_all() {
  for (auto& [base, region] : regions_) {
    if (region.valid_on != kHostDomain) {
      region.last_write = runtime_.enqueue_transfer(
          region.last_write_stream, region.base, region.bytes,
          XferDir::sink_to_src);
      ++stats_.transfers;
      region.valid_on = kHostDomain;
    }
  }
  runtime_.synchronize();
}

}  // namespace hs::ompss
