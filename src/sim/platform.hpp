#pragma once

// The paper's evaluation platforms (Fig 2), as simulated configurations.
//
//   Intel Xeon E5-2697v3 "HSW"  2S x 14C x 2T, 2.6 GHz, AVX2+FMA
//   Intel Xeon E5-2697v2 "IVB"  2S x 12C x 2T, 2.7 GHz, AVX (no FMA)
//   Intel Xeon Phi 7120A "KNC"  61C x 4T, 1.33 GHz (1 core reserved ->
//                               240 user threads, e.g. 4 streams x 60)
//   NVidia K40x                 15 SMX, used by the CUDA-like baseline
//
// Kernel ceilings are calibrated against the paper's own measurements:
// DGEMM 902 (HSW) / 475 (IVB) / 982 (KNC offload) GF/s; DPOTRF-class
// panel work is latency-bound on KNC (the reason MAGMA ships panels to
// the host, §VI).

#include <vector>

#include "core/domain.hpp"
#include "interconnect/link.hpp"
#include "sim/cost_model.hpp"

namespace hs::sim {

[[nodiscard]] DeviceModel hsw_model();
[[nodiscard]] DeviceModel ivb_model();
[[nodiscard]] DeviceModel knc_model();
[[nodiscard]] DeviceModel k40x_model();
/// A second HSW node reached over fabric (§IV: streams on "devices
/// residing in remote nodes"; §III exercised hStreams over COI between
/// Xeon nodes). Compute rates are host-class; only the link differs.
[[nodiscard]] DeviceModel remote_node_model();

/// A full simulated platform: domain descriptions for the Runtime plus
/// per-domain device models for the SimExecutor.
struct SimPlatform {
  PlatformDesc desc;
  std::vector<DeviceModel> models;  ///< indexed by DomainId
  LinkModel link = pcie_gen2_x16();
  /// Per-device links (empty = every device uses `link`).
  std::vector<LinkModel> domain_links;

  /// host + `cards` copies of `card`.
  [[nodiscard]] static SimPlatform build(const DeviceModel& host,
                                         const DeviceModel& card,
                                         std::size_t cards,
                                         LinkModel link = pcie_gen2_x16());
};

/// Convenience platforms matching the paper's configurations.
[[nodiscard]] SimPlatform hsw_plus_knc(std::size_t cards);
[[nodiscard]] SimPlatform ivb_plus_knc(std::size_t cards);
[[nodiscard]] SimPlatform hsw_only();
[[nodiscard]] SimPlatform ivb_only();
[[nodiscard]] SimPlatform hsw_plus_k40x();
/// HSW host + `cards` local KNC cards over PCIe + `remote_nodes`
/// fabric-attached HSW nodes — the "hetero cluster" configuration the
/// uniform stream interface targets.
[[nodiscard]] SimPlatform hsw_cluster(std::size_t cards,
                                      std::size_t remote_nodes);

}  // namespace hs::sim
