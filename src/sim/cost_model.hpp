#pragma once

// Calibrated device cost models.
//
// Each device rates every kernel class with a ceiling rate and a
// half-saturation work size:
//
//   gflops(task) = gflops_max * f * flops / (flops + flops_half * f)
//
// where f = team_width / total_threads is the fraction of the device a
// stream owns. The hyperbolic saturation reproduces the paper's central
// tuning observation: small tiles are inefficient, and the wider the
// stream, the larger the tile needed to saturate it (§VI "the best degree
// of tiling and number of streams depends on the matrix size and
// algorithm"). Ceilings are calibrated to the paper's own measured
// numbers (Fig 2 platforms; Figs 6-7 rates) — see sim/platform.cpp.

#include <map>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hs::sim {

/// Saturating rate curve for one kernel class on one device.
struct KernelRating {
  double gflops_max = 100.0;  ///< asymptotic rate with the whole device
  double flops_half = 1e8;    ///< work at which half the ceiling is reached
  /// Rate floor for tiny tasks. Latency-bound kernels (panel
  /// factorizations) run on a handful of cores regardless of stream
  /// width, so the floor is independent of the team fraction.
  double gflops_floor = 0.0;
};

/// Performance model of one domain.
struct DeviceModel {
  std::string name = "generic";
  std::size_t total_threads = 1;
  /// Per-task launch cost at the sink (remote invocation overhead; §III
  /// reports MIC-side invocation overheads as negligible-to-tens-of-us).
  double invoke_overhead_s = 10e-6;
  std::map<std::string, KernelRating, std::less<>> ratings;
  KernelRating default_rating;

  [[nodiscard]] const KernelRating& rating(std::string_view kernel) const {
    const auto it = ratings.find(kernel);
    return it == ratings.end() ? default_rating : it->second;
  }

  /// Effective rate (GF/s) of a task of `flops` on `team_width` threads.
  [[nodiscard]] double task_gflops(std::string_view kernel, double flops,
                                   std::size_t team_width) const {
    require(total_threads > 0, "device has no threads");
    const double f =
        std::min(1.0, static_cast<double>(team_width) /
                          static_cast<double>(total_threads));
    const KernelRating& r = rating(kernel);
    if (flops <= 0.0) {
      return r.gflops_max * f;
    }
    const double curve = r.gflops_max * f * flops / (flops + r.flops_half * f);
    return std::max(curve, r.gflops_floor);
  }

  /// Modeled wall seconds for a task (launch overhead + layered-runtime
  /// overhead + compute time).
  [[nodiscard]] double task_seconds(std::string_view kernel, double flops,
                                    std::size_t team_width,
                                    double layered_overhead_s = 0.0) const {
    double t = invoke_overhead_s + layered_overhead_s;
    if (flops > 0.0) {
      t += flops / (task_gflops(kernel, flops, team_width) * 1e9);
    }
    return t;
  }
};

}  // namespace hs::sim
