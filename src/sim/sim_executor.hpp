#pragma once

// SimExecutor: the discrete-event simulation backend.
//
// Runs the same dependence-ready actions the ThreadedExecutor would, but
// in *virtual time* against calibrated cost models — the substitute for
// the paper's Xeon + Xeon Phi testbed (the evaluation host has one CPU
// core; see DESIGN.md). Resources:
//
//   * one capacity-1 server per stream (a stream's team runs one compute
//     task at a time, like a gang of threads);
//   * per-device, per-direction DMA servers with the link's engine count
//     (transfers contend for engines, so over-decomposed tiling exposes
//     the fixed per-message latency — the §III overhead observations).
//
// Payload side effects (task bodies, transfer memcpys) still execute for
// real by default, so simulated algorithms remain numerically checkable.

#include <map>
#include <memory>

#include "core/executor.hpp"
#include "sim/cost_model.hpp"
#include "sim/des.hpp"
#include "sim/platform.hpp"

namespace hs::sim {

struct SimExecutorConfig {
  std::vector<DeviceModel> models;  ///< per-domain, indexed by DomainId
  /// Execute compute bodies / transfer copies for real (numerics intact).
  /// Benches that only need timing can turn this off.
  bool execute_payloads = true;
};

class SimExecutor final : public Executor {
 public:
  explicit SimExecutor(SimExecutorConfig config);
  /// Convenience: models + link straight from a SimPlatform.
  explicit SimExecutor(const SimPlatform& platform, bool execute_payloads = true);

  void attach(Runtime& runtime) override;
  void execute(const std::shared_ptr<ActionRecord>& action,
               CompletionFn done) override;
  void wait(const std::function<bool()>& ready) override;
  bool wait_for(const std::function<bool()>& ready,
                double timeout_s) override;
  [[nodiscard]] bool executes_payloads() const override {
    return config_.execute_payloads;
  }
  [[nodiscard]] double now() const override { return queue_.now(); }

  [[nodiscard]] EventQueue& event_queue() noexcept { return queue_; }
  [[nodiscard]] const DeviceModel& model(DomainId domain) const;
  /// Total busy seconds of a stream's compute server (utilization probe).
  [[nodiscard]] double stream_busy_seconds(StreamId stream) const;

 private:
  struct DmaKey {
    DomainId domain;
    XferDir dir;
    auto operator<=>(const DmaKey&) const = default;
  };

  [[nodiscard]] SimResource& stream_resource(StreamId stream);
  [[nodiscard]] SimResource& dma_resource(DomainId domain, XferDir dir);

  /// One transfer attempt: consults the fault oracle, then either submits
  /// to the DMA server, schedules a virtual-time backoff retry of itself,
  /// or escalates to domain loss. `failures` counts transient failures so
  /// far.
  void start_transfer_attempt(const std::shared_ptr<ActionRecord>& action,
                              DomainId domain, int failures,
                              CompletionFn done);

  /// Device->device (peer) transfer attempt: the star topology's two-hop
  /// staging path, pipelined. Above CoherenceConfig::pipeline_threshold
  /// the move is split into pipeline_chunk-sized pieces so chunk i's
  /// host->sink hop overlaps chunk i+1's peer->host hop; each hop stays
  /// serial within the action (one engine's bandwidth), so the speedup
  /// asymptote is 2x over the unchunked two-hop baseline (which is the
  /// K=1 degenerate case of the same code path). One fault decision per
  /// attempt, keyed by the sink domain — identical to the single-hop path
  /// so injector decision streams stay stable.
  void start_peer_attempt(const std::shared_ptr<ActionRecord>& action,
                          DomainId sink, int failures, CompletionFn done);

  SimExecutorConfig config_;
  Runtime* runtime_ = nullptr;
  EventQueue queue_;
  std::map<StreamId, std::unique_ptr<SimResource>> stream_resources_;
  std::map<DmaKey, std::unique_ptr<SimResource>> dma_resources_;
};

}  // namespace hs::sim
