#include "sim/sim_executor.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "core/runtime.hpp"

namespace hs::sim {

SimExecutor::SimExecutor(SimExecutorConfig config)
    : config_(std::move(config)) {
  require(!config_.models.empty(), "SimExecutor needs device models");
}

SimExecutor::SimExecutor(const SimPlatform& platform, bool execute_payloads)
    : SimExecutor(SimExecutorConfig{platform.models, execute_payloads}) {}

void SimExecutor::attach(Runtime& runtime) {
  runtime_ = &runtime;
  require(config_.models.size() >= runtime.domain_count(),
          "missing device models for some domains");
}

const DeviceModel& SimExecutor::model(DomainId domain) const {
  require(domain.value < config_.models.size(), "no model for domain",
          Errc::not_found);
  return config_.models[domain.value];
}

SimResource& SimExecutor::stream_resource(StreamId stream) {
  auto it = stream_resources_.find(stream);
  if (it == stream_resources_.end()) {
    it = stream_resources_
             .emplace(stream, std::make_unique<SimResource>(queue_, 1))
             .first;
  }
  return *it->second;
}

SimResource& SimExecutor::dma_resource(DomainId domain, XferDir dir) {
  const DmaKey key{domain, dir};
  auto it = dma_resources_.find(key);
  if (it == dma_resources_.end()) {
    const int engines = runtime_->link_for(domain).dma_engines_per_direction;
    it = dma_resources_
             .emplace(key, std::make_unique<SimResource>(
                               queue_, static_cast<std::size_t>(engines)))
             .first;
  }
  return *it->second;
}

double SimExecutor::stream_busy_seconds(StreamId stream) const {
  const auto it = stream_resources_.find(stream);
  return it == stream_resources_.end() ? 0.0 : it->second->busy_seconds();
}

void SimExecutor::execute(const std::shared_ptr<ActionRecord>& action,
                          CompletionFn done) {
  switch (action->type) {
    case ActionType::compute: {
      const DomainId domain = runtime_->stream_domain(action->stream);
      const std::size_t width = runtime_->stream_mask(action->stream).count();
      const DeviceModel& dev = model(domain);
      // ooc_stall_s: modeled victim-writeback + demand-refetch seconds
      // charged at dispatch (out-of-core). Virtual time must pay for the
      // data movement that execute_payloads=false runs never perform.
      const double duration =
          dev.task_seconds(action->compute.kernel, action->compute.flops,
                           width, action->compute.layered_overhead_s) +
          action->ooc_stall_s;
      // A throwing payload is contained: the action is marked failed and
      // the error surfaces at the next synchronization point. The
      // completion callback must not also run, so it is disarmed.
      auto failed = std::make_shared<bool>(false);
      stream_resource(action->stream)
          .submit(duration,
                  [this, action, domain, width, failed] {
                    // Skip the body if the domain died while this job
                    // queued; the runtime already failed the action.
                    if (config_.execute_payloads && action->compute.body &&
                        runtime_->domain_alive(domain)) {
                      TaskContext ctx(*runtime_, domain, nullptr, width,
                                      action.get());
                      try {
                        action->compute.body(ctx);
                      } catch (...) {
                        *failed = true;
                        runtime_->fail_action(action->id,
                                              std::current_exception());
                      }
                    }
                  },
                  [failed, done = std::move(done)] {
                    if (!*failed) {
                      done();
                    }
                  });
      return;
    }
    case ActionType::transfer: {
      const DomainId domain = runtime_->stream_domain(action->stream);
      if (domain == kHostDomain) {
        done();  // aliased away (§V)
        return;
      }
      if (action->transfer.peer != kHostDomain) {
        start_peer_attempt(action, domain, 0, std::move(done));
      } else {
        start_transfer_attempt(action, domain, 0, std::move(done));
      }
      return;
    }
    case ActionType::event_wait:
      action->wait_event->on_fire(std::move(done));
      return;
    case ActionType::event_signal:
      done();
      return;
    case ActionType::alloc: {
      // Sink-side allocation/registration cost, paid in stream order —
      // ~250 us/MB, the same constant the COI pool model charges. The
      // point of the async form is that it pipelines behind other
      // in-flight work instead of stalling the enqueueing host.
      constexpr double kAllocCostPerByte = 250e-6 / (1024.0 * 1024.0);
      const double duration =
          kAllocCostPerByte * static_cast<double>(action->transfer.length) +
          action->ooc_stall_s;
      stream_resource(action->stream).submit(duration, [] {}, std::move(done));
      return;
    }
  }
}

void SimExecutor::start_transfer_attempt(
    const std::shared_ptr<ActionRecord>& action, DomainId domain,
    int failures, CompletionFn done) {
  if (!runtime_->domain_alive(domain)) {
    // Lost while queued or backing off; the runtime already failed the
    // action (the claim makes `done` a no-op).
    done();
    return;
  }
  const FaultDecision fault = runtime_->next_transfer_fault(
      domain, action->transfer_seq, failures);
  if (fault.kind == FaultKind::device_loss) {
    runtime_->mark_domain_lost(domain);
    return;
  }
  if (fault.kind == FaultKind::transient_error) {
    const RetryPolicy& retry = runtime_->retry_policy();
    ++failures;
    if (failures >= retry.max_attempts) {
      // Retry budget exhausted: treat the link as gone for good.
      runtime_->mark_domain_lost(domain);
      return;
    }
    runtime_->note_transfer_retry(domain);
    // Exponential backoff in virtual time, then re-attempt.
    queue_.schedule_after(
        retry.backoff_seconds(failures),
        [this, action, domain, failures, done = std::move(done)]() mutable {
          start_transfer_attempt(action, domain, failures, std::move(done));
        });
    return;
  }
  const TransferPayload& t = action->transfer;
  const double staging = runtime_->account_transfer_staging(t.length);
  double duration =
      runtime_->link_for(domain).transfer_seconds(t.length) + staging;
  if (fault.kind == FaultKind::link_stall) {
    duration += fault.stall_s;  // the attempt succeeds, just late
  }
  if (failures == 0) {
    duration += action->ooc_stall_s;  // out-of-core spill/refetch time
  }
  dma_resource(domain, t.dir)
      .submit(duration,
              [this, action, domain] {
                if (!config_.execute_payloads ||
                    !runtime_->domain_alive(domain)) {
                  return;
                }
                const TransferPayload& p = action->transfer;
                std::byte* host = runtime_->buffer_local(
                    p.buffer, kHostDomain, p.offset, p.length);
                std::byte* sink = runtime_->buffer_local(
                    p.buffer, domain, p.offset, p.length);
                if (p.dir == XferDir::src_to_sink) {
                  std::memcpy(sink, host, p.length);
                } else {
                  std::memcpy(host, sink, p.length);
                }
              },
              std::move(done));
}

namespace {

/// Shared state of one chunked device->device move. The two hop lambdas
/// (stored as std::functions so they can resubmit themselves) form a
/// reference cycle through the owning shared_ptr; completion breaks it.
struct PeerPipeline {
  std::shared_ptr<ActionRecord> action;
  DomainId sink{0};
  DomainId peer{0};
  std::size_t chunk = 0;      ///< chunk size in bytes (== total when K = 1)
  std::size_t total = 0;
  std::size_t count = 0;      ///< K, the number of chunks
  std::size_t hop1_next = 0;  ///< next chunk to submit on the peer->host hop
  std::size_t hop1_done = 0;  ///< chunks landed in the host staging row
  std::size_t hop2_next = 0;  ///< next chunk to submit on the host->sink hop
  std::size_t hop2_done = 0;
  bool hop2_busy = false;     ///< hop 2 serialized within the action
  double start_s = 0.0;
  double stall_s = 0.0;       ///< link_stall fault, charged to the first chunk
  CompletionFn done;
  std::function<void()> advance_hop1;
  std::function<void()> try_hop2;

  [[nodiscard]] std::size_t len_of(std::size_t i) const {
    return std::min(chunk, total - i * chunk);
  }
};

}  // namespace

void SimExecutor::start_peer_attempt(
    const std::shared_ptr<ActionRecord>& action, DomainId sink, int failures,
    CompletionFn done) {
  if (!runtime_->domain_alive(sink)) {
    done();
    return;
  }
  const DomainId peer = action->transfer.peer;
  if (!runtime_->domain_alive(peer)) {
    // The source incarnation is gone; without its bytes the transfer
    // cannot run. Surfaces at the next sync like any device loss.
    runtime_->fail_action(
        action->id,
        std::make_exception_ptr(
            Error(Errc::device_lost,
                  "device->device transfer: source (peer) domain lost")));
    return;
  }
  // One fault decision per attempt, keyed by the sink domain and the
  // admission-time transfer id, exactly like the single-hop path:
  // chunking must not multiply the injector's decision stream.
  const FaultDecision fault =
      runtime_->next_transfer_fault(sink, action->transfer_seq, failures);
  if (fault.kind == FaultKind::device_loss) {
    runtime_->mark_domain_lost(sink);
    return;
  }
  if (fault.kind == FaultKind::transient_error) {
    const RetryPolicy& retry = runtime_->retry_policy();
    ++failures;
    if (failures >= retry.max_attempts) {
      runtime_->mark_domain_lost(sink);
      return;
    }
    runtime_->note_transfer_retry(sink);
    queue_.schedule_after(
        retry.backoff_seconds(failures),
        [this, action, sink, failures, done = std::move(done)]() mutable {
          start_peer_attempt(action, sink, failures, std::move(done));
        });
    return;
  }
  const TransferPayload& t = action->transfer;
  const CoherenceConfig& coh = runtime_->config().coherence;
  auto p = std::make_shared<PeerPipeline>();
  p->action = action;
  p->sink = sink;
  p->peer = peer;
  p->total = t.length;
  p->chunk = (t.length > coh.pipeline_threshold && coh.pipeline_chunk > 0)
                 ? std::min(coh.pipeline_chunk, t.length)
                 : t.length;
  p->count = (t.length + p->chunk - 1) / p->chunk;
  p->start_s = queue_.now();
  p->stall_s = fault.kind == FaultKind::link_stall ? fault.stall_s : 0.0;
  if (failures == 0) {
    p->stall_s += action->ooc_stall_s;  // out-of-core spill/refetch time
  }
  p->done = std::move(done);
  if (p->count > 1) {
    runtime_->note_transfer_chunks(p->count);
  }
  // Hop 1 (peer -> host staging), chunks chained serially.
  p->advance_hop1 = [this, p] {
    if (p->hop1_next >= p->count) {
      return;
    }
    const std::size_t i = p->hop1_next++;
    const std::size_t off = i * p->chunk;
    const std::size_t len = p->len_of(i);
    double duration = runtime_->link_for(p->peer).transfer_seconds(len) +
                      runtime_->account_transfer_staging(len);
    if (i == 0) {
      duration += p->stall_s;
    }
    dma_resource(p->peer, XferDir::sink_to_src)
        .submit(duration,
                [this, p, off, len] {
                  if (!config_.execute_payloads ||
                      !runtime_->domain_alive(p->peer)) {
                    return;
                  }
                  const TransferPayload& tp = p->action->transfer;
                  std::byte* host = runtime_->buffer_local(
                      tp.buffer, kHostDomain, tp.offset + off, len);
                  std::byte* src = runtime_->buffer_local(
                      tp.buffer, p->peer, tp.offset + off, len);
                  std::memcpy(host, src, len);
                },
                [p] {
                  ++p->hop1_done;
                  p->advance_hop1();
                  p->try_hop2();
                });
  };
  // Hop 2 (host staging -> sink): starts as soon as a chunk has landed,
  // serialized within the action so a multi-engine link cannot give one
  // logical transfer more than one engine's bandwidth per hop.
  p->try_hop2 = [this, p] {
    if (p->hop2_busy || p->hop2_next >= p->hop1_done) {
      return;
    }
    const std::size_t i = p->hop2_next++;
    p->hop2_busy = true;
    const std::size_t off = i * p->chunk;
    const std::size_t len = p->len_of(i);
    dma_resource(p->sink, XferDir::src_to_sink)
        .submit(runtime_->link_for(p->sink).transfer_seconds(len),
                [this, p, off, len] {
                  if (!config_.execute_payloads ||
                      !runtime_->domain_alive(p->sink)) {
                    return;
                  }
                  const TransferPayload& tp = p->action->transfer;
                  std::byte* host = runtime_->buffer_local(
                      tp.buffer, kHostDomain, tp.offset + off, len);
                  std::byte* dst = runtime_->buffer_local(
                      tp.buffer, p->sink, tp.offset + off, len);
                  std::memcpy(dst, host, len);
                },
                [this, p] {
                  p->hop2_busy = false;
                  if (++p->hop2_done == p->count) {
                    if (p->count > 1) {
                      const double serial =
                          runtime_->link_for(p->peer).transfer_seconds(
                              p->total) +
                          runtime_->link_for(p->sink).transfer_seconds(
                              p->total);
                      runtime_->note_pipeline_span(serial,
                                                   queue_.now() - p->start_s);
                    }
                    auto finish = std::move(p->done);
                    p->advance_hop1 = nullptr;  // break the shared_ptr cycle
                    p->try_hop2 = nullptr;
                    finish();
                  } else {
                    p->try_hop2();
                  }
                });
  };
  p->advance_hop1();
}

void SimExecutor::wait(const std::function<bool()>& ready) {
  // No lock around the poll: wait predicates are self-synchronizing
  // (see Executor::wait), and the simulator is single-threaded — all
  // completions happen inside queue_.step() on this thread.
  for (;;) {
    if (ready()) {
      return;
    }
    require(queue_.step(),
            "simulation deadlock: host is waiting but no events are pending "
            "(missing transfer/compute, or a wait on an event that nothing "
            "signals)",
            Errc::internal);
  }
}

bool SimExecutor::wait_for(const std::function<bool()>& ready,
                           double timeout_s) {
  const double deadline = queue_.now() + timeout_s;
  for (;;) {
    if (ready()) {
      return true;
    }
    // Timeout when the simulation cannot make `ready` true by the
    // deadline: either nothing is pending at all (a wedged stream) or the
    // next event lies beyond it. The clock still advances to the deadline
    // so timeouts consume virtual time like any other wait.
    if (queue_.empty() || queue_.next_time() > deadline) {
      queue_.advance_to(deadline);
      return false;
    }
    queue_.step();
  }
}

}  // namespace hs::sim
