#include "sim/platform.hpp"

namespace hs::sim {

// Calibration notes
// -----------------
// gflops_max is the device-wide ceiling for a kernel class; flops_half
// sets how much work a task needs before the rate saturates. Observable
// anchors from the paper:
//   * Fig 6: DGEMM 902 (HSW), 475 (IVB), 982 (1 KNC offload, large N).
//   * Fig 7: DPOTRF-dominated Cholesky — HSW native peaks 733; KNC-only
//     hStreams reaches 774; panel factorization (dpotrf) is latency-bound
//     on KNC, which is why MAGMA ships it to the host.
//   * Fig 3: clBLAS-on-MIC ("opencl" kernel class) is badly tuned: 35
//     GF/s for a 10K matmul.
//   * §VI RTM: optimized stencil is ~1.5x faster on KNC than HSW.

DeviceModel hsw_model() {
  DeviceModel m;
  m.name = "hsw";
  m.total_threads = 28;  // 2S x 14C (one thread per core for MKL-class work)
  m.invoke_overhead_s = 5e-6;
  m.ratings = {
      {"dgemm", {930.0, 4e7}},
      {"dsyrk", {880.0, 4e7}},
      {"dtrsm", {820.0, 4e7}},
      {"dpotrf", {760.0, 3e9}},  // native MKL DPOTRF: 733 near N=20000
      {"dgetrf", {640.0, 2e9}},
      {"ldlt", {620.0, 1e8}},
      {"stencil", {95.0, 1e6}},   // bandwidth-bound on DDR
      {"stencil_naive", {70.0, 1e6}},
      {"opencl_gemm", {760.0, 4e7}},
  };
  m.default_rating = {500.0, 5e7};
  return m;
}

DeviceModel ivb_model() {
  // IVB has no FMA and a lower clock: the paper measures 475 GF/s DGEMM,
  // roughly half of HSW.
  DeviceModel m;
  m.name = "ivb";
  m.total_threads = 24;  // 2S x 12C
  m.invoke_overhead_s = 5e-6;
  m.ratings = {
      {"dgemm", {490.0, 3e7}},
      {"dsyrk", {465.0, 3e7}},
      {"dtrsm", {430.0, 3e7}},
      {"dpotrf", {400.0, 2e9}},
      {"dgetrf", {340.0, 1.5e9}},
      {"ldlt", {330.0, 8e7}},
      {"stencil", {62.0, 1e6}},
      {"stencil_naive", {46.0, 1e6}},
      {"opencl_gemm", {400.0, 3e7}},
  };
  m.default_rating = {260.0, 4e7};
  return m;
}

DeviceModel knc_model() {
  DeviceModel m;
  m.name = "knc";
  // 61 cores x 4 threads, one core reserved for the OS/offload daemon:
  // 240 user threads (the paper's Fig 9 uses 4 streams x 60 threads).
  m.total_threads = 240;
  m.invoke_overhead_s = 20e-6;  // remote invocation over PCIe
  m.ratings = {
      {"dgemm", {1030.0, 5e8}},  // saturates to ~982 observed
      {"dsyrk", {950.0, 5e8}},
      {"dtrsm", {640.0, 6e8}},
      // Panel factorizations are latency-bound on the in-order cores:
      // enormous saturation size, so KNC only overtakes HSW's native
      // DPOTRF near N=20000 (2n^3/6 ~ 2.7e12 flops), matching §VI "an
      // untiled Cholesky runs better natively on a Haswell ... for matrix
      // sizes up to 20,000". Tile-sized panels are brutally slow here,
      // which is why every hybrid scheme ships them to the host.
      {"dpotrf", {950.0, 6.8e11, 25.0}},
      {"dgetrf", {800.0, 9e11, 20.0}},
      {"ldlt", {700.0, 1.2e9}},
      // Unvectorized code hurts the in-order KNC cores far more than
      // the host, hence the steep naive penalty (§VI RTM tuning note).
      {"stencil", {150.0, 6e6}},  // GDDR5 bandwidth advantage over DDR3
      {"stencil_naive", {75.0, 6e6}},
      // clBLAS is "significantly under-optimized for the MIC" (§IV).
      {"opencl_gemm", {36.0, 5e8}},
  };
  m.default_rating = {220.0, 5e8};
  return m;
}

DeviceModel k40x_model() {
  DeviceModel m;
  m.name = "k40x";
  m.total_threads = 15;  // SMX count; streams map onto SMX partitions
  m.invoke_overhead_s = 8e-6;  // mature CUDA launch path
  m.ratings = {
      {"dgemm", {1220.0, 4e8}},
      {"dsyrk", {1100.0, 4e8}},
      {"dtrsm", {800.0, 5e8}},
      {"dpotrf", {150.0, 8e9, 8.0}},
      {"ldlt", {820.0, 1e9}},
      {"stencil", {190.0, 3e6}},
      {"stencil_naive", {95.0, 3e6}},
  };
  m.default_rating = {300.0, 4e8};
  return m;
}

DeviceModel remote_node_model() {
  DeviceModel m = hsw_model();
  m.name = "remote-hsw";
  // Remote invocation crosses the fabric: launch overhead dominates the
  // MIC-side number.
  m.invoke_overhead_s = 40e-6;
  return m;
}

namespace {

DomainDesc to_desc(const DeviceModel& model, DomainKind kind) {
  DomainDesc d;
  d.name = model.name;
  d.kind = kind;
  d.hw_threads = model.total_threads;
  return d;
}

}  // namespace

SimPlatform SimPlatform::build(const DeviceModel& host,
                               const DeviceModel& card, std::size_t cards,
                               LinkModel link) {
  SimPlatform p;
  p.link = link;
  p.desc.domains.push_back(to_desc(host, DomainKind::host));
  p.models.push_back(host);
  const DomainKind card_kind = card.name == "k40x" ? DomainKind::gpu
                                                   : DomainKind::coprocessor;
  for (std::size_t i = 0; i < cards; ++i) {
    p.desc.domains.push_back(to_desc(card, card_kind));
    p.models.push_back(card);
  }
  return p;
}

SimPlatform hsw_plus_knc(std::size_t cards) {
  return SimPlatform::build(hsw_model(), knc_model(), cards);
}

SimPlatform ivb_plus_knc(std::size_t cards) {
  return SimPlatform::build(ivb_model(), knc_model(), cards);
}

SimPlatform hsw_only() {
  return SimPlatform::build(hsw_model(), knc_model(), 0);
}

SimPlatform ivb_only() {
  return SimPlatform::build(ivb_model(), knc_model(), 0);
}

SimPlatform hsw_plus_k40x() {
  return SimPlatform::build(hsw_model(), k40x_model(), 1);
}

SimPlatform hsw_cluster(std::size_t cards, std::size_t remote_nodes) {
  SimPlatform p = hsw_plus_knc(cards);
  for (std::size_t i = 0; i < cards; ++i) {
    p.domain_links.push_back(pcie_gen2_x16());
  }
  const DeviceModel remote = remote_node_model();
  for (std::size_t i = 0; i < remote_nodes; ++i) {
    p.desc.domains.push_back(to_desc(remote, DomainKind::remote_node));
    p.models.push_back(remote);
    p.domain_links.push_back(fabric_link());
  }
  return p;
}

}  // namespace hs::sim
