#pragma once

// Discrete-event simulation engine.
//
// A single-threaded priority queue of timestamped callbacks with a
// virtual clock. The SimExecutor schedules action start/completion events
// here; the paper's evaluation figures are regenerated in virtual time on
// this engine (the substitute for the authors' Xeon + Xeon Phi testbed —
// see DESIGN.md).
//
// Determinism: ties in timestamp are broken by insertion order, so a
// given enqueue sequence always replays identically.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.hpp"

namespace hs::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void schedule_at(double t, Callback fn) {
    require(t >= now_ - 1e-15, "event scheduled in the past");
    heap_.push(Entry{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` `dt` seconds from now.
  void schedule_after(double dt, Callback fn) {
    require(dt >= 0.0, "negative delay");
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Pops and runs the earliest event, advancing the clock to its time.
  /// Returns false if the queue is empty (clock unchanged).
  bool step() {
    if (heap_.empty()) {
      return false;
    }
    // Move the callback out before running: the callback may schedule new
    // events and mutate the heap.
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.time;
    entry.fn();
    return true;
  }

  /// Runs until no events remain.
  void drain() {
    while (step()) {
    }
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event (queue must be non-empty).
  [[nodiscard]] double next_time() const {
    require(!heap_.empty(), "next_time on an empty queue");
    return heap_.top().time;
  }

  /// Advances the clock to `t` without running anything — used when a
  /// virtual-time deadline expires before the next event. Must not skip
  /// over pending events.
  void advance_to(double t) {
    require(heap_.empty() || heap_.top().time >= t,
            "advance_to would skip pending events");
    if (t > now_) {
      now_ = t;
    }
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback fn;

    bool operator>(const Entry& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// A capacity-limited FIFO server (a stream's compute slot, a link's DMA
/// engines). Jobs occupy one unit of capacity for their duration; excess
/// jobs queue in submission order.
class SimResource {
 public:
  SimResource(EventQueue& queue, std::size_t capacity)
      : queue_(queue), capacity_(capacity) {
    require(capacity > 0, "resource capacity must be positive");
  }

  /// Submits a job: `on_start` runs when a capacity unit is granted (this
  /// is where payload side effects execute), `on_done` runs `duration`
  /// seconds later.
  void submit(double duration, EventQueue::Callback on_start,
              EventQueue::Callback on_done) {
    waiting_.push(Job{duration, std::move(on_start), std::move(on_done)});
    pump();
  }

  [[nodiscard]] std::size_t busy() const noexcept { return busy_; }
  [[nodiscard]] std::size_t queued() const noexcept { return waiting_.size(); }
  /// Accumulated busy time across all capacity units (utilization probe).
  [[nodiscard]] double busy_seconds() const noexcept { return busy_seconds_; }

 private:
  struct Job {
    double duration;
    EventQueue::Callback on_start;
    EventQueue::Callback on_done;
  };

  void pump() {
    while (busy_ < capacity_ && !waiting_.empty()) {
      Job job = std::move(waiting_.front());
      waiting_.pop();
      ++busy_;
      busy_seconds_ += job.duration;
      // Start effects happen "now" (service grant time).
      job.on_start();
      queue_.schedule_after(job.duration,
                            [this, done = std::move(job.on_done)] {
                              --busy_;
                              done();
                              pump();
                            });
    }
  }

  EventQueue& queue_;
  std::size_t capacity_;
  std::size_t busy_ = 0;
  double busy_seconds_ = 0.0;
  std::queue<Job> waiting_;
};

}  // namespace hs::sim
