// trace2txt: runs a small pipelined workload with tracing enabled and
// prints a per-stream text Gantt, demonstrating the TraceRecorder as a
// standalone tuning aid (no Chrome needed).
//
// Usage: trace2txt [columns]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

int main(int argc, char** argv) {
  using namespace hs;
  const std::size_t columns =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 72;

  const sim::SimPlatform platform = sim::hsw_plus_knc(1);
  RuntimeConfig config;
  config.platform = platform.desc;
  Runtime runtime(config,
                  std::make_unique<sim::SimExecutor>(platform, false));
  TraceRecorder trace;
  runtime.set_trace(&trace);

  // A small pipelined workload: upload tiles, compute, download —
  // interleaved across two streams so the overlap is visible.
  constexpr std::size_t kTiles = 6;
  std::vector<double> data(kTiles << 18);  // 2MB tiles
  const BufferId id =
      runtime.buffer_create(data.data(), data.size() * sizeof(double));
  runtime.buffer_instantiate(id, DomainId{1});
  StreamId streams[2] = {
      runtime.stream_create(DomainId{1}, CpuMask::first_n(120)),
      runtime.stream_create(DomainId{1}, CpuMask::range(120, 240))};
  for (std::size_t t = 0; t < kTiles; ++t) {
    const StreamId s = streams[t % 2];
    double* tile = data.data() + (t << 18);
    const std::size_t bytes = (1u << 18) * sizeof(double);
    (void)runtime.enqueue_transfer(s, tile, bytes, XferDir::src_to_sink);
    ComputePayload task;
    task.kernel = "dgemm";
    task.flops = 3e9;
    task.body = [](TaskContext&) {};
    const OperandRef ops[] = {{tile, bytes, Access::inout}};
    (void)runtime.enqueue_compute(s, std::move(task), ops);
    (void)runtime.enqueue_transfer(s, tile, bytes, XferDir::sink_to_src);
  }
  runtime.synchronize();

  // Render: one row per stream, '#' executing, '.' blocked.
  const auto records = trace.records();
  double horizon = 0.0;
  for (const auto& r : records) {
    horizon = std::max(horizon, r.complete_s);
  }
  std::map<std::uint32_t, std::string> rows;
  for (const auto& r : records) {
    std::string& row =
        rows.try_emplace(r.stream.value, std::string(columns, ' '))
            .first->second;
    auto col = [&](double t) {
      return std::min(columns - 1,
                      static_cast<std::size_t>(t / horizon *
                                               static_cast<double>(columns)));
    };
    for (std::size_t cidx = col(r.enqueue_s); cidx < col(r.dispatch_s);
         ++cidx) {
      if (row[cidx] == ' ') {
        row[cidx] = '.';
      }
    }
    const char mark = r.type == ActionType::transfer ? '~' : '#';
    for (std::size_t cidx = col(r.dispatch_s); cidx <= col(r.complete_s);
         ++cidx) {
      row[cidx] = mark;
    }
  }
  std::printf("virtual makespan: %.3f ms  (%zu actions)\n", horizon * 1e3,
              records.size());
  std::printf("legend: '#' compute  '~' transfer  '.' blocked\n\n");
  for (const auto& [stream, row] : rows) {
    std::printf("stream %-3u |%s|\n", stream, row.c_str());
  }
  return 0;
}
