// hsinfo: platform discovery inspector (the "domains are discoverable
// and enumerable" surface, §II).
//
// Prints the domains, their kinds, thread counts, memory budgets and
// links for a chosen emulated platform.
//
// Usage: hsinfo [hsw|ivb] [cards] [remote_nodes] [--key=value ...]
//        hsinfo --inspect-checkpoint=<dir>
//
// --inspect-checkpoint prints every committed epoch of a checkpoint
// directory (manifest header, per-buffer sizes, per-chunk ranges and
// checksums) and verifies chunk integrity on disk without restoring
// anything; exit status 1 if any epoch is unreadable or fails
// verification.
//
// Fault/retry knobs (RuntimeConfig::faults / ::retry) can be set with
// trailing --key=value flags and are echoed back in the report:
//   --fault-seed=N --p-loss=X --p-transient=X --p-stall=X --stall-us=X
//   --retry-max=N --backoff-us=X --backoff-mult=X

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "checkpoint/checkpoint.hpp"
#include "checkpoint/manifest.hpp"
#include "core/runtime.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

namespace {

/// Value of a `--name=value` flag, or nullptr if absent.
const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

double flag_double(int argc, char** argv, const char* name, double fallback) {
  const char* v = flag_value(argc, argv, name);
  return v != nullptr ? std::atof(v) : fallback;
}

/// --inspect-checkpoint=<dir>: dump and verify every committed epoch.
int inspect_checkpoint(const std::string& dir) {
  using namespace hs;
  const std::vector<std::uint64_t> epochs = ckpt::committed_epochs(dir);
  if (epochs.empty()) {
    std::printf("no committed epochs under %s\n", dir.c_str());
    return 1;
  }
  int rc = 0;
  for (const std::uint64_t epoch : epochs) {
    char name[64];
    std::snprintf(name, sizeof name, "manifest_%06" PRIu64, epoch);
    std::ifstream in(dir + "/" + name, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    ckpt::Manifest manifest;
    if (const Status s = ckpt::Manifest::parse(text.str(), manifest); !s) {
      std::printf("epoch %" PRIu64 ": manifest UNREADABLE (%s)\n", epoch,
                  s.message().c_str());
      rc = 1;
      continue;
    }
    std::printf("epoch %" PRIu64 ": time=%.6f actions_completed=%" PRIu64
                " cursor=%" PRIu64 "/%" PRIu64 " (user=%" PRIu64
                ") buffers=%zu chunks=%zu\n",
                manifest.epoch, manifest.time, manifest.actions_completed,
                manifest.cursor.nodes_completed, manifest.cursor.total_nodes,
                manifest.cursor.user, manifest.buffers.size(),
                manifest.chunks.size());
    for (const auto& [buffer, size] : manifest.buffers) {
      std::printf("  buffer %-24s %zu bytes\n", buffer.c_str(), size);
    }
    for (const ckpt::ChunkRef& chunk : manifest.chunks) {
      std::printf("  chunk  %-32s %-16s epoch=%" PRIu64
                  " [%zu, %zu) crc=%016" PRIx64 "\n",
                  chunk.file.c_str(), chunk.buffer.c_str(), chunk.epoch,
                  chunk.offset, chunk.offset + chunk.length, chunk.crc);
    }
    if (const Status s = ckpt::verify_chunks(dir, manifest); !s) {
      std::printf("  integrity: FAILED (%s)\n", s.message().c_str());
      rc = 1;
    } else {
      std::printf("  integrity: ok (%zu chunks verified)\n",
                  manifest.chunks.size());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;

  if (const char* dir = flag_value(argc, argv, "--inspect-checkpoint")) {
    return inspect_checkpoint(dir);
  }

  const bool ivb = argc > 1 && std::strcmp(argv[1], "ivb") == 0;
  const std::size_t cards = argc > 2 && argv[2][0] != '-'
                                ? static_cast<std::size_t>(std::atoi(argv[2]))
                                : 2;
  const std::size_t remotes = argc > 3 && argv[3][0] != '-'
                                  ? static_cast<std::size_t>(std::atoi(argv[3]))
                                  : 0;

  sim::SimPlatform platform =
      remotes > 0 ? sim::hsw_cluster(cards, remotes)
                  : (ivb ? sim::ivb_plus_knc(cards)
                         : sim::hsw_plus_knc(cards));
  RuntimeConfig config;
  config.platform = platform.desc;
  config.device_link = platform.link;
  config.domain_links = platform.domain_links;
  config.faults.seed = static_cast<std::uint64_t>(
      flag_double(argc, argv, "--fault-seed", 0.0));
  config.faults.p_device_loss = flag_double(argc, argv, "--p-loss", 0.0);
  config.faults.p_transient = flag_double(argc, argv, "--p-transient", 0.0);
  config.faults.p_stall = flag_double(argc, argv, "--p-stall", 0.0);
  config.faults.stall_s =
      flag_double(argc, argv, "--stall-us", config.faults.stall_s * 1e6) / 1e6;
  config.retry.max_attempts = static_cast<int>(flag_double(
      argc, argv, "--retry-max", static_cast<double>(config.retry.max_attempts)));
  config.retry.base_backoff_s =
      flag_double(argc, argv, "--backoff-us", config.retry.base_backoff_s * 1e6) /
      1e6;
  config.retry.multiplier =
      flag_double(argc, argv, "--backoff-mult", config.retry.multiplier);
  Runtime runtime(config,
                  std::make_unique<sim::SimExecutor>(platform, false));

  std::printf("%-4s %-12s %-12s %-8s %-24s %s\n", "id", "name", "kind",
              "threads", "memory", "link");
  for (std::size_t d = 0; d < runtime.domain_count(); ++d) {
    const DomainId id{static_cast<std::uint32_t>(d)};
    const Domain& dom = runtime.domain(id);
    const char* kind = "?";
    switch (dom.desc().kind) {
      case DomainKind::host: kind = "host"; break;
      case DomainKind::coprocessor: kind = "coprocessor"; break;
      case DomainKind::gpu: kind = "gpu"; break;
      case DomainKind::remote_node: kind = "remote-node"; break;
    }
    char memory[64] = "";
    std::size_t at = 0;
    for (const auto& [mk, bytes] : dom.desc().memory_bytes) {
      const char* name = mk == MemKind::ddr   ? "ddr"
                         : mk == MemKind::hbm ? "hbm"
                                              : "pmem";
      at += static_cast<std::size_t>(std::snprintf(
          memory + at, sizeof memory - at, "%s:%zuGB ", name, bytes >> 30));
    }
    char link[64] = "-";
    if (!dom.is_host()) {
      const LinkModel& l = runtime.link_for(id);
      std::snprintf(link, sizeof link, "%s (%.0fus, %.1fGB/s)",
                    l.name.c_str(), l.latency_s * 1e6, l.bandwidth_Bps / 1e9);
    }
    std::printf("%-4zu %-12s %-12s %-8zu %-24s %s\n", d,
                dom.desc().name.c_str(), kind, dom.hw_threads(), memory,
                link);
  }

  std::printf("\nkernel ratings (GF/s ceiling @ whole device):\n");
  std::printf("%-12s", "domain");
  for (const char* k : {"dgemm", "dpotrf", "ldlt", "stencil"}) {
    std::printf(" %10s", k);
  }
  std::printf("\n");
  for (std::size_t d = 0; d < platform.models.size(); ++d) {
    const auto& m = platform.models[d];
    std::printf("%-12s", m.name.c_str());
    for (const char* k : {"dgemm", "dpotrf", "ldlt", "stencil"}) {
      std::printf(" %10.0f", m.rating(k).gflops_max);
    }
    std::printf("\n");
  }

  // Active fault model and retry policy (RuntimeConfig::faults / ::retry).
  const FaultPlan& plan = runtime.config().faults;
  const RetryPolicy& retry = runtime.config().retry;
  std::printf("\nfault injection: %s\n",
              plan.enabled() ? "enabled" : "disabled");
  if (plan.enabled()) {
    std::printf("  seed=%llu p_device_loss=%g p_transient=%g p_stall=%g "
                "stall=%.0fus scheduled=%zu\n",
                static_cast<unsigned long long>(plan.seed), plan.p_device_loss,
                plan.p_transient, plan.p_stall, plan.stall_s * 1e6,
                plan.schedule.size());
  }
  std::printf("retry policy: max_attempts=%d base_backoff=%.0fus "
              "multiplier=%g\n",
              retry.max_attempts, retry.base_backoff_s * 1e6,
              retry.multiplier);

  // Admission-path probe: a short multi-stream enqueue burst through the
  // per-buffer dependence index, so the discovery tool also reports what
  // dependence analysis costs on this build (HS_DEP_LEGACY / HS_DEP_ORACLE
  // change these numbers; see DESIGN.md "Scalable admission path").
  {
    constexpr std::size_t kStreams = 4;
    constexpr std::size_t kActionsPerStream = 64;
    static double burst_data[kStreams * kActionsPerStream];
    (void)runtime.buffer_create(burst_data, sizeof burst_data);
    for (std::size_t s = 0; s < kStreams; ++s) {
      const StreamId stream =
          runtime.stream_create(kHostDomain, CpuMask::first_n(1));
      for (std::size_t a = 0; a < kActionsPerStream; ++a) {
        // One private write plus one read of the stream's slot 0: every
        // action depends on the first, exercising both index paths.
        const OperandRef ops[] = {
            {&burst_data[s * kActionsPerStream + a], sizeof(double),
             Access::out},
            {&burst_data[s * kActionsPerStream], sizeof(double), Access::in},
        };
        ComputePayload payload;
        payload.body = [](TaskContext&) {};
        (void)runtime.enqueue_compute(stream, std::move(payload), ops);
      }
    }
    runtime.synchronize();
    const RuntimeStats stats = runtime.stats();
    std::printf("\nadmission path (%zu streams x %zu actions):\n", kStreams,
                kActionsPerStream);
    std::printf("  dep_index_hits=%llu dep_scan_steps=%llu "
                "lock_shard_contention=%llu dep_oracle_checks=%llu\n",
                static_cast<unsigned long long>(stats.dep_index_hits),
                static_cast<unsigned long long>(stats.dep_scan_steps),
                static_cast<unsigned long long>(stats.lock_shard_contention),
                static_cast<unsigned long long>(stats.dep_oracle_checks));
  }

  // Byte-range coherence: config echo (HS_COHERENCE_OFF / HS_NO_ELIDE /
  // HS_COHERENCE_ORACLE change these; see DESIGN.md "Byte-range
  // coherence") plus a probe — the same upload twice, where the second
  // is provably redundant and should be elided.
  {
    const CoherenceConfig& coh = runtime.config().coherence;
    std::printf("\nbyte-range coherence: track=%s elide=%s oracle=%s\n",
                coh.track ? "on" : "off", coh.elide ? "on" : "off",
                coh.oracle ? "on" : "off");
    std::printf("  pipeline_threshold=%zuKiB pipeline_chunk=%zuKiB "
                "(device->device transfers above the threshold are "
                "chunked and hop-overlapped)\n",
                coh.pipeline_threshold >> 10, coh.pipeline_chunk >> 10);

    static double probe_data[512];
    const BufferId probe =
        runtime.buffer_create(probe_data, sizeof probe_data);
    const DomainId card{1};
    if (runtime.domain_count() > 1) {
      runtime.buffer_instantiate(probe, card);
      const StreamId stream =
          runtime.stream_create(card, CpuMask::first_n(1));
      const RuntimeStats before = runtime.stats();
      (void)runtime.enqueue_transfer(stream, probe_data, sizeof probe_data,
                                     XferDir::src_to_sink);
      (void)runtime.enqueue_transfer(stream, probe_data, sizeof probe_data,
                                     XferDir::src_to_sink);
      runtime.synchronize();
      const RuntimeStats after = runtime.stats();
      std::printf("  probe (same %zu-byte upload twice): "
                  "transfers_elided=%llu bytes_elided=%llu "
                  "bytes_transferred=%llu\n",
                  sizeof probe_data,
                  static_cast<unsigned long long>(after.transfers_elided -
                                                  before.transfers_elided),
                  static_cast<unsigned long long>(after.bytes_elided -
                                                  before.bytes_elided),
                  static_cast<unsigned long long>(after.bytes_transferred -
                                                  before.bytes_transferred));
    }
  }

  // Durable checkpoint probe: two epochs into a scratch directory — a
  // full initial snapshot, then an incremental one after dirtying 128
  // bytes — followed by a restore, so the report shows what the
  // validity-map-driven snapshots skip (see DESIGN.md "Durable
  // incremental checkpoint/restart").
  {
    char tmpl[] = "/tmp/hsinfo_ckpt_XXXXXX";
    char* tmp = mkdtemp(tmpl);
    if (tmp != nullptr) {
      static double ckpt_data[1024];
      const BufferId probe = runtime.buffer_create(ckpt_data, sizeof ckpt_data);
      {
        ckpt::CheckpointConfig cc;
        cc.directory = tmp;
        ckpt::CheckpointManager manager(runtime, cc);
        manager.track("probe", probe);
        manager.checkpoint().expect("hsinfo: checkpoint probe epoch 1");
        runtime.note_host_write(ckpt_data, 16 * sizeof(double));
        manager.checkpoint().expect("hsinfo: checkpoint probe epoch 2");
        RuntimeStats cstats = runtime.stats();
        runtime.restore_from_checkpoint(manager)
            .expect("hsinfo: checkpoint probe restore");
        cstats = runtime.stats();
        std::printf("\ndurable checkpoint (probe: %zu-byte buffer, full + "
                    "128-byte incremental epoch, restore):\n",
                    sizeof ckpt_data);
        std::printf("  checkpoints_taken=%llu checkpoint_bytes_written=%llu "
                    "checkpoint_bytes_skipped_clean=%llu "
                    "restores_performed=%llu\n",
                    static_cast<unsigned long long>(cstats.checkpoints_taken),
                    static_cast<unsigned long long>(
                        cstats.checkpoint_bytes_written),
                    static_cast<unsigned long long>(
                        cstats.checkpoint_bytes_skipped_clean),
                    static_cast<unsigned long long>(
                        cstats.restores_performed));
        std::printf("  (inspect any checkpoint directory with "
                    "hsinfo --inspect-checkpoint=<dir>)\n");
      }
      std::error_code ec;
      std::filesystem::remove_all(tmp, ec);
    }
  }

  // Multi-tenant service probe: two tenants (3:1 weights, the second
  // with a tight byte quota in fail mode) share the runtime through a
  // Service; each runs a short session so the report shows per-tenant
  // counter slices, gate behavior, and a quota_exceeded rejection
  // (see DESIGN.md "Weighted-fair admission").
  if (runtime.domain_count() > 1) {
    service::Service svc(runtime);
    (void)svc.tenant_create({.name = "gold", .weight = 3});
    (void)svc.tenant_create({.name = "best-effort",
                             .weight = 1,
                             .max_bytes_in_flight = 8 * 1024,
                             .quota_mode = service::QuotaMode::fail});
    static double tenant_data[2][2048];
    for (std::uint32_t t = 1; t <= 2; ++t) {
      auto session = svc.open_session(t);
      const StreamId stream =
          session->stream_create(DomainId{1}, CpuMask::first_n(1));
      session->buffer_create("work", tenant_data[t - 1],
                             sizeof tenant_data[t - 1]);
      session->buffer_instantiate("work", DomainId{1});
      // gold uploads the whole buffer each round; best-effort uploads
      // 4 KiB rounds so its 8 KiB in-flight quota admits two and
      // rejects two (sim completes transfers only at synchronize).
      const std::size_t len =
          t == 1 ? sizeof tenant_data[t - 1] : std::size_t{4096};
      for (int i = 0; i < 4; ++i) {
        try {
          (void)session->enqueue_transfer(stream, tenant_data[t - 1], len,
                                          XferDir::src_to_sink);
        } catch (const Error& e) {
          if (e.code() != Errc::quota_exceeded) throw;
        }
        const OperandRef op{tenant_data[t - 1], sizeof(double), Access::inout};
        ComputePayload payload;
        payload.body = [](TaskContext&) {};
        (void)session->enqueue_compute(stream, std::move(payload),
                                       std::span<const OperandRef>(&op, 1));
      }
      session->synchronize();
      session->close();
    }
    std::printf("\nmulti-tenant service (gate=%s quantum=%llu permits=%zu; "
                "probe: 2 tenants x 4 transfer+compute rounds):\n",
                svc.config().fair_admission ? "weighted_drr" : "off",
                static_cast<unsigned long long>(svc.config().quantum),
                svc.config().permits);
    std::printf("  %-12s %-7s %9s %9s %10s %8s %8s %8s %8s\n", "tenant",
                "weight", "computes", "xfers", "bytes", "elided", "gate",
                "waits", "rejects");
    for (std::uint32_t t = 1; t <= svc.tenant_count(); ++t) {
      const service::TenantStats ts = svc.tenant_stats(t);
      std::printf("  %-12s %-7u %9llu %9llu %10llu %8llu %8llu %8llu %8llu\n",
                  svc.tenant_config(t).name.c_str(), svc.tenant_config(t).weight,
                  static_cast<unsigned long long>(ts.runtime.computes_enqueued),
                  static_cast<unsigned long long>(ts.runtime.transfers_enqueued),
                  static_cast<unsigned long long>(ts.runtime.bytes_transferred),
                  static_cast<unsigned long long>(ts.runtime.transfers_elided),
                  static_cast<unsigned long long>(ts.gate_passes),
                  static_cast<unsigned long long>(ts.gate_waits),
                  static_cast<unsigned long long>(ts.quota_rejections));
    }
  }

  // Out-of-core governor probe: a dedicated runtime whose single card
  // gets an 8 KiB DDR budget, three 4 KiB buffers pushed through it.
  // The third instantiation evicts instead of throwing, the compute on
  // the spilled first buffer demand re-fetches it, and the final
  // instantiations spill one clean (free drop) and one dirty (writeback)
  // victim (see DESIGN.md "Out-of-core eviction").
  {
    sim::SimPlatform tiny = sim::hsw_plus_knc(1);
    tiny.desc.domains[1].memory_bytes = {{MemKind::ddr, std::size_t{8192}}};
    RuntimeConfig oc;
    oc.platform = tiny.desc;
    oc.device_link = tiny.link;
    oc.domain_links = tiny.domain_links;
    Runtime ooc(oc, std::make_unique<sim::SimExecutor>(tiny, true));
    static double spill_data[3][512];
    const DomainId card{1};
    BufferId ids[3];
    for (int b = 0; b < 3; ++b) {
      ids[b] = ooc.buffer_create(spill_data[b], sizeof spill_data[b]);
      ooc.buffer_instantiate(ids[b], card);
    }
    const StreamId stream = ooc.stream_create(card, CpuMask::first_n(1));
    (void)ooc.enqueue_transfer(stream, spill_data[0], sizeof spill_data[0],
                               XferDir::src_to_sink);
    const OperandRef op{spill_data[0], sizeof spill_data[0], Access::inout};
    ComputePayload payload;
    payload.body = [](TaskContext&) {};
    (void)ooc.enqueue_compute(stream, std::move(payload),
                              std::span<const OperandRef>(&op, 1));
    ooc.synchronize();
    ooc.buffer_instantiate(ids[1], card);
    ooc.buffer_instantiate(ids[2], card);
    const RuntimeStats os = ooc.stats();
    std::printf("\nout-of-core governor (probe: 3 x 4 KiB buffers through an "
                "8 KiB card budget):\n");
    std::printf("  evictions=%llu refetches=%llu spill_bytes_written=%llu "
                "spill_bytes_dropped_clean=%llu\n",
                static_cast<unsigned long long>(os.evictions),
                static_cast<unsigned long long>(os.refetches),
                static_cast<unsigned long long>(os.spill_bytes_written),
                static_cast<unsigned long long>(os.spill_bytes_dropped_clean));
  }
  return 0;
}
