// hsinfo: platform discovery inspector (the "domains are discoverable
// and enumerable" surface, §II).
//
// Prints the domains, their kinds, thread counts, memory budgets and
// links for a chosen emulated platform.
//
// Usage: hsinfo [hsw|ivb] [cards] [remote_nodes]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/runtime.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

int main(int argc, char** argv) {
  using namespace hs;

  const bool ivb = argc > 1 && std::strcmp(argv[1], "ivb") == 0;
  const std::size_t cards =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;
  const std::size_t remotes =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 0;

  sim::SimPlatform platform =
      remotes > 0 ? sim::hsw_cluster(cards, remotes)
                  : (ivb ? sim::ivb_plus_knc(cards)
                         : sim::hsw_plus_knc(cards));
  RuntimeConfig config;
  config.platform = platform.desc;
  config.device_link = platform.link;
  config.domain_links = platform.domain_links;
  Runtime runtime(config,
                  std::make_unique<sim::SimExecutor>(platform, false));

  std::printf("%-4s %-12s %-12s %-8s %-24s %s\n", "id", "name", "kind",
              "threads", "memory", "link");
  for (std::size_t d = 0; d < runtime.domain_count(); ++d) {
    const DomainId id{static_cast<std::uint32_t>(d)};
    const Domain& dom = runtime.domain(id);
    const char* kind = "?";
    switch (dom.desc().kind) {
      case DomainKind::host: kind = "host"; break;
      case DomainKind::coprocessor: kind = "coprocessor"; break;
      case DomainKind::gpu: kind = "gpu"; break;
      case DomainKind::remote_node: kind = "remote-node"; break;
    }
    char memory[64] = "";
    std::size_t at = 0;
    for (const auto& [mk, bytes] : dom.desc().memory_bytes) {
      const char* name = mk == MemKind::ddr   ? "ddr"
                         : mk == MemKind::hbm ? "hbm"
                                              : "pmem";
      at += static_cast<std::size_t>(std::snprintf(
          memory + at, sizeof memory - at, "%s:%zuGB ", name, bytes >> 30));
    }
    char link[64] = "-";
    if (!dom.is_host()) {
      const LinkModel& l = runtime.link_for(id);
      std::snprintf(link, sizeof link, "%s (%.0fus, %.1fGB/s)",
                    l.name.c_str(), l.latency_s * 1e6, l.bandwidth_Bps / 1e9);
    }
    std::printf("%-4zu %-12s %-12s %-8zu %-24s %s\n", d,
                dom.desc().name.c_str(), kind, dom.hw_threads(), memory,
                link);
  }

  std::printf("\nkernel ratings (GF/s ceiling @ whole device):\n");
  std::printf("%-12s", "domain");
  for (const char* k : {"dgemm", "dpotrf", "ldlt", "stencil"}) {
    std::printf(" %10s", k);
  }
  std::printf("\n");
  for (std::size_t d = 0; d < platform.models.size(); ++d) {
    const auto& m = platform.models[d];
    std::printf("%-12s", m.name.c_str());
    for (const char* k : {"dgemm", "dpotrf", "ldlt", "stencil"}) {
      std::printf(" %10.0f", m.rating(k).gflops_max);
    }
    std::printf("\n");
  }
  return 0;
}
