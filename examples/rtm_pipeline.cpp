// Petrobras-style RTM halo pipelining (paper §V/§VI).
//
// Shows the two halo-exchange schemes on a 2-rank decomposition:
//   * sync_offload  — compute, barrier, exchange, barrier;
//   * pipelined     — halo slabs first, transfers enqueued in the same
//                     stream (FIFO + operands order them), bulk compute
//                     overlapping the exchange.
// Verifies both produce bit-identical wavefields, then times them at a
// larger scale on the simulator.
//
// Build & run:  ./examples/rtm_pipeline

#include <cstdio>
#include <vector>

#include "apps/rtm.hpp"
#include "core/threaded_executor.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace hs;

  // --- Correctness: schemes agree bit for bit -----------------------------
  std::vector<double> sync_field;
  std::vector<double> pipe_field;
  for (const apps::RtmScheme scheme :
       {apps::RtmScheme::sync_offload, apps::RtmScheme::pipelined}) {
    RuntimeConfig config;
    config.platform = PlatformDesc::host_plus_cards(2, 2, 4);
    Runtime runtime(config, std::make_unique<ThreadedExecutor>());
    apps::RtmConfig rtm;
    rtm.nx = 24;
    rtm.ny = 20;
    rtm.nz = 32;
    rtm.steps = 4;
    rtm.ranks = 2;
    rtm.scheme = scheme;
    auto* field = scheme == apps::RtmScheme::pipelined ? &pipe_field
                                                       : &sync_field;
    (void)apps::run_rtm(runtime, rtm, field);
  }
  bool identical = sync_field == pipe_field;
  std::printf("sync vs pipelined wavefields identical: %s\n",
              identical ? "yes" : "NO (bug!)");

  // --- Performance: virtual time at paper-like scale ----------------------
  std::printf("\nsimulated 2 ranks on 2 KNC cards, 600x600x192, 50 steps:\n");
  for (const apps::RtmScheme scheme :
       {apps::RtmScheme::host_only, apps::RtmScheme::sync_offload,
        apps::RtmScheme::pipelined}) {
    const sim::SimPlatform platform = sim::hsw_plus_knc(2);
    RuntimeConfig config;
    config.platform = platform.desc;
    config.device_link = platform.link;
    Runtime runtime(config, std::make_unique<sim::SimExecutor>(
                                platform, /*execute_payloads=*/false));
    apps::RtmConfig rtm;
    rtm.nx = 600;
    rtm.ny = 600;
    rtm.nz = 192;
    rtm.steps = 50;
    rtm.ranks = 2;
    rtm.scheme = scheme;
    const apps::RtmStats stats = apps::run_rtm(runtime, rtm);
    const char* name = scheme == apps::RtmScheme::host_only ? "host only  "
                       : scheme == apps::RtmScheme::sync_offload
                           ? "sync offload"
                           : "pipelined   ";
    std::printf("  %s : %7.3f s  (%.1f Mpoints/s)\n", name, stats.seconds,
                stats.mpoints_per_s);
  }
  return identical ? 0 : 1;
}
