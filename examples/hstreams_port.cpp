// The quickstart, written against the hStreams-compatible C-style API —
// what a port of an existing hStreams application would look like.
//
// Kernels are registered by name (the original resolves sink-side
// symbols in a shared library shipped to the card); heap arguments
// arrive in the kernel already translated to sink-local addresses, and
// each one carries a whole-buffer dependence, exactly as in [1].
//
// Build & run:  ./examples/hstreams_port

#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/hstreams_compat.hpp"

using namespace hs;
using namespace hs::compat;

namespace {

// --- "sink-side" code ---------------------------------------------------

void register_kernels() {
  // dscal: args = [heap ptr, count, scale-bits]
  (void)hStreams_RegisterKernel(
      "dscal", [](const std::uint64_t* args, std::size_t, TaskContext& ctx) {
        auto* data = reinterpret_cast<double*>(args[0]);
        const auto count = static_cast<std::size_t>(args[1]);
        double factor;
        static_assert(sizeof factor == sizeof args[2]);
        std::memcpy(&factor, &args[2], sizeof factor);
        ctx.parallel_for(count,
                         [data, factor](std::size_t i) { data[i] *= factor; });
      });
  // dsum: args = [heap in ptr, count, heap out ptr]
  (void)hStreams_RegisterKernel(
      "dsum", [](const std::uint64_t* args, std::size_t, TaskContext&) {
        const auto* data = reinterpret_cast<const double*>(args[0]);
        const auto count = static_cast<std::size_t>(args[1]);
        auto* out = reinterpret_cast<double*>(args[2]);
        double acc = 0.0;
        for (std::size_t i = 0; i < count; ++i) {
          acc += data[i];
        }
        *out = acc;
      });
}

std::uint64_t bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

#define CHECK(call)                                                        \
  do {                                                                     \
    const HSTR_RESULT rc_ = (call);                                        \
    if (rc_ != HSTR_RESULT_SUCCESS) {                                      \
      std::fprintf(stderr, "%s failed: %s\n", #call,                       \
                   hStreams_ResultGetName(rc_));                           \
      return 1;                                                            \
    }                                                                      \
  } while (0)

}  // namespace

int main() {
  register_kernels();
  CHECK(hStreams_SetPlatform(PlatformDesc::host_plus_cards(4, 2, 8)));
  CHECK(hStreams_app_init(/*streams_per_domain=*/2));

  std::uint32_t domains = 0;
  std::uint32_t streams = 0;
  CHECK(hStreams_GetNumPhysDomains(&domains));
  CHECK(hStreams_GetNumLogStreams(&streams));
  std::printf("%u physical domains, %u logical streams\n", domains, streams);

  // Two vectors, processed on different streams (= different cards).
  constexpr std::size_t kN = 1 << 15;
  std::vector<double> va(kN);
  std::vector<double> vb(kN);
  std::iota(va.begin(), va.end(), 0.0);
  std::iota(vb.begin(), vb.end(), 1.0);
  std::vector<double> sums(2, 0.0);
  CHECK(hStreams_app_create_buf(va.data(), kN * sizeof(double)));
  CHECK(hStreams_app_create_buf(vb.data(), kN * sizeof(double)));
  CHECK(hStreams_app_create_buf(sums.data(), 2 * sizeof(double)));

  HSTR_EVENT done[2] = {HSTR_NULL_EVENT, HSTR_NULL_EVENT};
  const std::uint32_t target_stream[2] = {0, 2};  // one per card
  double* vecs[2] = {va.data(), vb.data()};
  for (std::size_t v = 0; v < 2; ++v) {
    const std::uint32_t s = target_stream[v];
    CHECK(hStreams_app_xfer_memory(vecs[v], vecs[v], kN * sizeof(double), s,
                                   HSTR_SRC_TO_SINK, nullptr));
    const HSTR_ARG scale_args[] = {HSTR_ARG::heap(vecs[v]),
                                   HSTR_ARG::scalar(kN),
                                   HSTR_ARG::scalar(bits_of(0.5))};
    CHECK(hStreams_EnqueueCompute(s, "dscal", scale_args, 3, nullptr));
    const HSTR_ARG sum_args[] = {HSTR_ARG::heap(vecs[v]),
                                 HSTR_ARG::scalar(kN),
                                 HSTR_ARG::heap(&sums[v])};
    CHECK(hStreams_EnqueueCompute(s, "dsum", sum_args, 3, nullptr));
    CHECK(hStreams_app_xfer_memory(&sums[v], &sums[v], sizeof(double), s,
                                   HSTR_SINK_TO_SRC, &done[v]));
  }
  CHECK(hStreams_app_event_wait(2, done));

  const double expect_a = 0.5 * (kN - 1.0) * kN / 2.0;
  std::printf("sum(0.5*va) = %.1f (expected %.1f)\n", sums[0], expect_a);
  std::printf("sum(0.5*vb) = %.1f (expected %.1f)\n", sums[1],
              expect_a + 0.5 * kN);

  CHECK(hStreams_app_fini());
  return 0;
}
