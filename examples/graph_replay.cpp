// Task-graph capture & replay: amortizing the enqueue cost of an
// iterative loop.
//
// A ping-pong relaxation kernel runs many sweeps of the same three
// actions (upload boundary, compute, download result). Eagerly, every
// sweep pays validation, operand resolution and dependence analysis per
// action. Here the sweep is captured ONCE as a TaskGraph — through the
// unmodified enqueue code — and then replayed per iteration as a single
// pre-linked batch, with the ping/pong roles rotated by buffer
// rebinding instead of recapturing.
//
// Build & run:  ./examples/graph_replay

#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "core/threaded_executor.hpp"
#include "graph/capture.hpp"
#include "graph/passes.hpp"
#include "graph/replay.hpp"

int main() {
  using namespace hs;

  RuntimeConfig config;
  config.platform = PlatformDesc::host_plus_cards(4, 1, 8);
  Runtime runtime(config, std::make_unique<ThreadedExecutor>());
  const DomainId card{1};
  const StreamId stream = runtime.stream_create(card, CpuMask::first_n(4));

  // Ping-pong state: each sweep reads `src` and writes `dst`, then the
  // buffers swap roles. n kept tiny so the output is checkable by eye.
  constexpr std::size_t kN = 8;
  // A heat spike in the middle: a linear ramp would be a fixed point of
  // the stencil, so this shape actually shows the sweeps diffusing it.
  std::vector<double> ping(kN, 0.0), pong(kN, 0.0);
  ping[kN / 2] = 8.0;
  const BufferId ping_id =
      runtime.buffer_create(ping.data(), kN * sizeof(double));
  const BufferId pong_id =
      runtime.buffer_create(pong.data(), kN * sizeof(double));
  runtime.buffer_instantiate(ping_id, card);
  runtime.buffer_instantiate(pong_id, card);

  // --- Capture one sweep through the ordinary enqueue front-end. -----------
  const StreamId captured_streams[] = {stream};
  graph::GraphCapture capture(runtime, captured_streams);

  (void)runtime.enqueue_transfer(stream, ping.data(), kN * sizeof(double),
                                 XferDir::src_to_sink);
  ComputePayload sweep;
  sweep.kernel = "relax";
  sweep.body = [](TaskContext& ctx) {
    // Bodies written against *operands* (not raw pointers) survive
    // buffer rebinding: operand 0/1 resolve to whatever buffers this
    // replay bound them to.
    const double* src = ctx.operand_as<double>(0);
    double* dst = ctx.operand_as<double>(1);
    dst[0] = src[0];
    dst[kN - 1] = src[kN - 1];
    for (std::size_t i = 1; i + 1 < kN; ++i) {
      dst[i] = 0.5 * src[i] + 0.25 * (src[i - 1] + src[i + 1]);
    }
  };
  const OperandRef ops[] = {
      {ping.data(), kN * sizeof(double), Access::in},
      {pong.data(), kN * sizeof(double), Access::out}};
  (void)runtime.enqueue_compute(stream, std::move(sweep), ops);
  (void)runtime.enqueue_transfer(stream, pong.data(), kN * sizeof(double),
                                 XferDir::sink_to_src);

  graph::TaskGraph graph = capture.finish();
  std::printf("captured %zu nodes, %zu pre-resolved edges (graph id %u)\n",
              graph.size(), graph.edge_count(), graph.id);

  // Offline analysis only a captured graph allows: the modeled critical
  // path, per-domain attribution, slack.
  std::fputs(to_string(graph::critical_path(graph), graph).c_str(), stdout);

  // --- Replay: one pre-linked batch per sweep, roles swapped by bind(). ----
  graph::GraphExec exec(runtime, std::move(graph));
  constexpr int kSweeps = 6;
  for (int s = 0; s < kSweeps; ++s) {
    if (s % 2 == 0) {
      exec.clear_bindings();  // capture-time roles: ping -> pong
    } else {
      exec.bind(ping_id, pong_id);  // swapped: pong -> ping
      exec.bind(pong_id, ping_id);
    }
    (void)exec.launch();
    runtime.synchronize();
  }

  const double* result = (kSweeps % 2 == 0) ? ping.data() : pong.data();
  std::printf("after %d replayed sweeps:", kSweeps);
  for (std::size_t i = 0; i < kN; ++i) {
    std::printf(" %.3f", result[i]);
  }
  std::printf("\n");

  const RuntimeStats stats = runtime.stats();
  std::printf("stats: %llu graphs captured, %llu replays, %llu dependence "
              "edges reused\n",
              static_cast<unsigned long long>(stats.graphs_captured),
              static_cast<unsigned long long>(stats.graph_replays),
              static_cast<unsigned long long>(stats.deps_reused));
  return 0;
}
