// Tuner's view: logical domains + execution tracing.
//
// Splits the host into two NUMA-like logical domains, runs a tiled
// Cholesky across host + card with a trace recorder attached, prints a
// per-stream utilization summary, and writes a Chrome-trace JSON
// (open chrome://tracing or https://ui.perfetto.dev and load it).
//
// Build & run:  ./examples/tuning_trace [trace.json]

#include <cstdio>
#include <fstream>
#include <map>

#include "apps/cholesky.hpp"
#include "core/logical_domain.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

int main(int argc, char** argv) {
  using namespace hs;

  const sim::SimPlatform platform = sim::hsw_plus_knc(1);
  RuntimeConfig config;
  config.platform = platform.desc;
  config.device_link = platform.link;
  Runtime runtime(config, std::make_unique<sim::SimExecutor>(
                              platform, /*execute_payloads=*/false));
  TraceRecorder trace;
  runtime.set_trace(&trace);

  // The tuner's partitioning decision, separate from the app code.
  DomainPartitioner partitioner(runtime);
  const auto numa = partitioner.split_evenly(kHostDomain, 2);
  std::printf("logical host domains: %zu slices of %zu threads\n",
              numa.size(), partitioner.width(numa[0]));

  apps::TiledMatrix a = apps::TiledMatrix::phantom(12000, 1200);
  apps::CholeskyConfig chol;
  chol.streams_per_device = 4;
  chol.host_streams = 2;
  const apps::CholeskyStats stats = apps::run_cholesky(runtime, chol, a);
  std::printf("cholesky N=12000: %.3f s -> %.0f GF/s (virtual time)\n",
              stats.seconds, stats.gflops);

  // Per-stream digest from the trace: busy vs blocked time.
  struct StreamDigest {
    double busy = 0.0;
    double blocked = 0.0;
    std::size_t actions = 0;
  };
  std::map<std::uint32_t, StreamDigest> digest;
  for (const auto& r : trace.records()) {
    auto& d = digest[r.stream.value];
    // Busy = executing computes/transfers; waits are not resource time.
    if (r.type == ActionType::compute || r.type == ActionType::transfer) {
      d.busy += r.complete_s - r.dispatch_s;
    }
    d.blocked += r.dispatch_s - r.enqueue_s;
    ++d.actions;
  }
  std::printf("\n%-8s %-8s %-10s %-10s\n", "stream", "actions", "busy s",
              "blocked s");
  for (const auto& [stream, d] : digest) {
    std::printf("%-8u %-8zu %-10.4f %-10.4f\n", stream, d.actions, d.busy,
                d.blocked);
  }

  const char* path = argc > 1 ? argv[1] : "cholesky_trace.json";
  std::ofstream out(path);
  trace.write_chrome_trace(out);
  std::printf("\nwrote %zu trace records to %s (load in chrome://tracing)\n",
              trace.size(), path);
  return 0;
}
