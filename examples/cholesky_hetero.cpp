// Heterogeneous tiled Cholesky (the paper's Fig 5 algorithm) end to end:
//
//  1. functional run on the threaded backend — real data, residual check;
//  2. the same algorithm on the calibrated simulator at paper scale,
//     sweeping card counts to show the scaling the evaluation reports.
//
// Build & run:  ./examples/cholesky_hetero

#include <cstdio>

#include "apps/cholesky.hpp"
#include "core/threaded_executor.hpp"
#include "hsblas/reference.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace hs;

  // --- Part 1: numerics on the threaded backend --------------------------
  {
    RuntimeConfig config;
    config.platform = PlatformDesc::host_plus_cards(4, 2, 8);
    Runtime runtime(config, std::make_unique<ThreadedExecutor>());

    Rng rng(2024);
    blas::Matrix dense(256, 256);
    dense.make_spd(rng);
    const blas::Matrix original = dense;
    apps::TiledMatrix a = apps::TiledMatrix::from_dense(dense, 64);

    apps::CholeskyConfig chol;
    chol.streams_per_device = 2;
    chol.host_streams = 2;
    const apps::CholeskyStats stats = apps::run_cholesky(runtime, chol, a);

    const blas::Matrix recon =
        blas::ref::reconstruct_llt(a.to_dense().view());
    const double err = blas::max_abs_diff(recon.view(), original.view());
    std::printf("threaded: factored 256x256 across host + 2 cards, "
                "rows host/cards = %zu/%zu, max |LL^T - A| = %.2e\n",
                stats.rows_host, stats.rows_cards, err);
  }

  // --- Part 2: paper-scale timing on the simulator ------------------------
  std::printf("\nsimulated HSW + k KNC, N=16000 (virtual time):\n");
  for (const std::size_t cards : {0u, 1u, 2u}) {
    const sim::SimPlatform platform = sim::hsw_plus_knc(cards);
    RuntimeConfig config;
    config.platform = platform.desc;
    config.device_link = platform.link;
    Runtime runtime(config, std::make_unique<sim::SimExecutor>(
                                platform, /*execute_payloads=*/false));

    apps::TiledMatrix a = apps::TiledMatrix::phantom(16000, 1000);
    apps::CholeskyConfig chol;
    chol.streams_per_device = 4;
    chol.host_streams = 2;
    const apps::CholeskyStats stats = apps::run_cholesky(runtime, chol, a);
    std::printf("  %zu card(s): %6.3f s  -> %6.0f GF/s\n", cards,
                stats.seconds, stats.gflops);
  }
  return 0;
}
