// OmpSs-style dataflow on top of the streaming runtime (paper §II/§IV).
//
// The user declares tasks with in/out/inout data; the OmpSs layer detects
// dependences, allocates and moves data automatically, and schedules
// across devices — over either the hStreams relaxed-FIFO backend or the
// CUDA-Streams strict backend the paper compares against.
//
// Build & run:  ./examples/ompss_dataflow

#include <cstdio>

#include "apps/tiled_matrix.hpp"
#include "core/threaded_executor.hpp"
#include "hsblas/kernels.hpp"
#include "hsblas/reference.hpp"
#include "ompss/ompss.hpp"

int main() {
  using namespace hs;

  RuntimeConfig config;
  config.platform = PlatformDesc::host_plus_cards(4, 1, 8);
  config.transfer_pool_enabled = false;  // the paper's OmpSs configuration
  Runtime runtime(config, std::make_unique<ThreadedExecutor>());

  ompss::OmpssConfig oc;
  oc.backend = ompss::BackendStyle::hstreams;
  oc.streams_per_device = 2;
  ompss::OmpssRuntime omp(runtime, oc);

  // A 4x4-tiled matmul written as a dependency-annotated task graph.
  constexpr std::size_t kN = 128;
  constexpr std::size_t kTile = 32;
  Rng rng(7);
  blas::Matrix da(kN, kN);
  blas::Matrix db(kN, kN);
  da.randomize(rng);
  db.randomize(rng);
  apps::TiledMatrix a = apps::TiledMatrix::from_dense(da, kTile);
  apps::TiledMatrix b = apps::TiledMatrix::from_dense(db, kTile);
  apps::TiledMatrix c = apps::TiledMatrix::square(kN, kTile);

  // OmpSs tracks dependences per registered object: register each tile.
  for (apps::TiledMatrix* m : {&a, &b, &c}) {
    for (std::size_t j = 0; j < m->col_tiles(); ++j) {
      for (std::size_t i = 0; i < m->row_tiles(); ++i) {
        omp.register_region(m->tile_ptr(i, j), m->tile_bytes(i, j));
      }
    }
  }

  for (std::size_t p = 0; p < c.col_tiles(); ++p) {
    for (std::size_t k = 0; k < a.col_tiles(); ++k) {
      for (std::size_t i = 0; i < a.row_tiles(); ++i) {
        const double* pa = a.tile_ptr(i, k);
        const double* pb = b.tile_ptr(k, p);
        double* pc = c.tile_ptr(i, p);
        const double beta = k == 0 ? 0.0 : 1.0;
        // #pragma omp task in(A[i][k], B[k][p]) inout(C[i][p])
        omp.task(
            "dgemm", blas::gemm_flops(kTile, kTile, kTile),
            [pa, pb, pc, beta](TaskContext& ctx) {
              const double* ta = ctx.translate(pa, kTile * kTile);
              const double* tb = ctx.translate(pb, kTile * kTile);
              double* tc = ctx.translate(pc, kTile * kTile);
              blas::gemm(blas::Op::none, blas::Op::none, 1.0,
                         {ta, kTile, kTile, kTile}, {tb, kTile, kTile, kTile},
                         beta, {tc, kTile, kTile, kTile});
            },
            {{pa, kTile * kTile * sizeof(double), Access::in},
             {pb, kTile * kTile * sizeof(double), Access::in},
             {pc, kTile * kTile * sizeof(double),
              k == 0 ? Access::out : Access::inout}});
      }
    }
  }
  omp.fetch_all();  // write dirty regions home and drain

  const blas::Matrix expected = blas::ref::multiply(da, db);
  const double err =
      blas::max_abs_diff(c.to_dense().view(), expected.view());
  const auto& stats = omp.stats();
  std::printf("tasks submitted        : %zu\n", stats.tasks);
  std::printf("transfers inserted     : %zu (automatic data movement)\n",
              stats.transfers);
  std::printf("cross-stream edges     : %zu (events the runtime managed)\n",
              stats.cross_stream_edges);
  std::printf("max |C - A*B|          : %.2e\n", err);
  return err < 1e-9 ? 0 : 1;
}
