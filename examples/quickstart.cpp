// Quickstart: the three hStreams abstractions in ~80 lines.
//
//   domains — the host plus emulated coprocessor cards;
//   streams — FIFO task queues bound to (domain, CPU-mask) sinks;
//   buffers — proxy-addressed memory with per-domain incarnations.
//
// This example uploads a vector to an emulated card, scales it there with
// a team-parallel task, pulls it back, and shows the FIFO-with-
// out-of-order behaviour that distinguishes hStreams from strict stream
// models.
//
// Build & run:  ./examples/quickstart

#include <cstdio>
#include <numeric>
#include <vector>

#include "core/runtime.hpp"
#include "core/threaded_executor.hpp"

int main() {
  using namespace hs;

  // A platform with one host (4 threads) and one card (8 threads).
  RuntimeConfig config;
  config.platform = PlatformDesc::host_plus_cards(4, 1, 8);
  Runtime runtime(config, std::make_unique<ThreadedExecutor>());

  std::printf("domains:\n");
  for (std::size_t d = 0; d < runtime.domain_count(); ++d) {
    const Domain& dom = runtime.domain(DomainId{static_cast<uint32_t>(d)});
    std::printf("  [%zu] %-6s kind=%s threads=%zu\n", d,
                dom.desc().name.c_str(),
                dom.is_host() ? "host" : "coprocessor", dom.hw_threads());
  }

  // A stream whose sink is the card, using 4 of its 8 threads.
  const DomainId card{1};
  const StreamId stream = runtime.stream_create(card, CpuMask::first_n(4));

  // Wrap user memory as a buffer; instantiate it on the card.
  std::vector<double> data(1 << 16);
  std::iota(data.begin(), data.end(), 0.0);
  const BufferId buffer =
      runtime.buffer_create(data.data(), data.size() * sizeof(double));
  runtime.buffer_instantiate(buffer, card);

  // Enqueue: upload -> compute -> download. The three actions share the
  // buffer operand, so FIFO order is enforced between them implicitly —
  // no events, no waits.
  (void)runtime.enqueue_transfer(stream, data.data(),
                                 data.size() * sizeof(double),
                                 XferDir::src_to_sink);

  ComputePayload task;
  task.kernel = "scale";
  task.flops = static_cast<double>(data.size());
  double* ptr = data.data();
  const std::size_t count = data.size();
  task.body = [ptr, count](TaskContext& ctx) {
    // Task code uses only host proxy addresses; translate() finds the
    // card-local incarnation. parallel_for expands across the stream's
    // team without the task knowing the team width.
    double* local = ctx.translate(ptr, count);
    ctx.parallel_for(count, [local](std::size_t i) { local[i] *= 2.0; });
  };
  const OperandRef ops[] = {
      {ptr, count * sizeof(double), Access::inout}};
  (void)runtime.enqueue_compute(stream, std::move(task), ops);

  auto done = runtime.enqueue_transfer(stream, data.data(),
                                       data.size() * sizeof(double),
                                       XferDir::sink_to_src);

  // Host-side wait on the last action's completion event.
  const std::shared_ptr<EventState> events[] = {done};
  runtime.event_wait_host(events);
  std::printf("data[100] = %.1f (expected 200.0)\n", data[100]);

  // Out-of-order under FIFO semantics: a transfer touching *different*
  // memory overtakes a queued compute (the §II example).
  std::vector<double> other(1 << 16, 1.0);
  const BufferId buffer2 =
      runtime.buffer_create(other.data(), other.size() * sizeof(double));
  runtime.buffer_instantiate(buffer2, card);
  ComputePayload slow;
  slow.kernel = "slow";
  slow.body = [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  const OperandRef slow_ops[] = {{ptr, count * sizeof(double), Access::inout}};
  (void)runtime.enqueue_compute(stream, std::move(slow), slow_ops);
  auto xfer = runtime.enqueue_transfer(stream, other.data(),
                                       other.size() * sizeof(double),
                                       XferDir::src_to_sink);
  const std::shared_ptr<EventState> xevents[] = {xfer};
  runtime.event_wait_host(xevents);
  std::printf("independent transfer finished while the task still runs: %s\n",
              runtime.stats().ooo_dispatches > 0 ? "yes" : "no");

  runtime.synchronize();
  const RuntimeStats stats = runtime.stats();
  std::printf("stats: %llu computes, %llu transfers, %llu bytes moved\n",
              static_cast<unsigned long long>(stats.computes_enqueued),
              static_cast<unsigned long long>(stats.transfers_enqueued),
              static_cast<unsigned long long>(stats.bytes_transferred));
  return 0;
}
