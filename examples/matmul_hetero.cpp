// The paper's flagship algorithm (Fig 4): hetero tiled matrix multiply
// across the host and multiple cards.
//
//   * A is broadcast, one tile at a time, to the host (host-as-target
//     streams: transfers aliased away) and to every card;
//   * B and C are partitioned into column panels owned by one domain
//     each — no card-card communication, ever;
//   * computation on a panel starts as soon as its first tiles arrive
//     (pipelining), instead of waiting for whole matrices like the
//     traditional offload.
//
// Part 1 checks numerics on the threaded backend; part 2 reproduces the
// Fig 6 load-balancing observation in virtual time.
//
// Build & run:  ./examples/matmul_hetero

#include <cstdio>

#include "apps/matmul.hpp"
#include "core/threaded_executor.hpp"
#include "hsblas/reference.hpp"
#include "sim/platform.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace hs;

  // --- Part 1: host + 2 emulated cards, real data -------------------------
  {
    RuntimeConfig config;
    config.platform = PlatformDesc::host_plus_cards(4, 2, 8);
    Runtime runtime(config, std::make_unique<ThreadedExecutor>());

    Rng rng(99);
    blas::Matrix da(192, 192);
    blas::Matrix db(192, 192);
    da.randomize(rng);
    db.randomize(rng);
    apps::TiledMatrix a = apps::TiledMatrix::from_dense(da, 32);
    apps::TiledMatrix b = apps::TiledMatrix::from_dense(db, 32);
    apps::TiledMatrix c = apps::TiledMatrix::square(192, 32);

    apps::MatmulConfig mm;
    mm.streams_per_device = 2;
    mm.host_streams = 2;
    const apps::MatmulStats stats = apps::run_matmul(runtime, mm, a, b, c);

    const blas::Matrix expected = blas::ref::multiply(da, db);
    const double err =
        blas::max_abs_diff(c.to_dense().view(), expected.view());
    std::printf("threaded: C=A*B across host + 2 cards — panels "
                "host/cards = %zu/%zu, max error %.2e\n",
                stats.panels_host, stats.panels_cards, err);
    const RuntimeStats rs = runtime.stats();
    std::printf("          %llu tasks, %llu transfers, %llu actions ran "
                "out of order under FIFO semantics\n",
                static_cast<unsigned long long>(rs.computes_enqueued),
                static_cast<unsigned long long>(rs.transfers_enqueued),
                static_cast<unsigned long long>(rs.ooo_dispatches));
  }

  // --- Part 2: the Fig 6 load-balancing effect in virtual time ------------
  std::printf("\nIVB + 2 KNC, N=16000 (virtual time):\n");
  for (const bool balanced : {false, true}) {
    const sim::SimPlatform platform = sim::ivb_plus_knc(2);
    RuntimeConfig config;
    config.platform = platform.desc;
    config.device_link = platform.link;
    Runtime runtime(config, std::make_unique<sim::SimExecutor>(
                                platform, /*execute_payloads=*/false));
    apps::TiledMatrix a = apps::TiledMatrix::phantom(16000, 16000 / 15);
    apps::TiledMatrix b = apps::TiledMatrix::phantom(16000, 16000 / 15);
    apps::TiledMatrix c = apps::TiledMatrix::phantom(16000, 16000 / 15);
    apps::MatmulConfig mm;
    mm.streams_per_device = 4;
    mm.host_streams = 2;
    if (balanced) {
      mm.domain_weights = {0.48, 1.0, 1.0};  // IVB is half a KNC
    }
    const apps::MatmulStats stats = apps::run_matmul(runtime, mm, a, b, c);
    std::printf("  %-22s %6.0f GF/s\n",
                balanced ? "weighted panels:" : "naive even panels:",
                stats.gflops);
  }
  std::printf("(the paper reports this load-balancing gap as 1.58x)\n");
  return 0;
}
