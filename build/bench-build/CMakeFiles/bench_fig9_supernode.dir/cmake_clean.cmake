file(REMOVE_RECURSE
  "../bench/bench_fig9_supernode"
  "../bench/bench_fig9_supernode.pdb"
  "CMakeFiles/bench_fig9_supernode.dir/bench_fig9_supernode.cpp.o"
  "CMakeFiles/bench_fig9_supernode.dir/bench_fig9_supernode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_supernode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
