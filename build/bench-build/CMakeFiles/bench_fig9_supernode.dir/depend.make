# Empty dependencies file for bench_fig9_supernode.
# This may be replaced when dependencies are built.
