# Empty compiler generated dependencies file for bench_fabric_cluster.
# This may be replaced when dependencies are built.
