file(REMOVE_RECURSE
  "../bench/bench_fabric_cluster"
  "../bench/bench_fabric_cluster.pdb"
  "CMakeFiles/bench_fabric_cluster.dir/bench_fabric_cluster.cpp.o"
  "CMakeFiles/bench_fabric_cluster.dir/bench_fabric_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fabric_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
