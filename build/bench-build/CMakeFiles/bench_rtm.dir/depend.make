# Empty dependencies file for bench_rtm.
# This may be replaced when dependencies are built.
