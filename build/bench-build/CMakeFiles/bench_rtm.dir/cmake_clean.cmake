file(REMOVE_RECURSE
  "../bench/bench_rtm"
  "../bench/bench_rtm.pdb"
  "CMakeFiles/bench_rtm.dir/bench_rtm.cpp.o"
  "CMakeFiles/bench_rtm.dir/bench_rtm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
