file(REMOVE_RECURSE
  "../bench/bench_ompss_backend"
  "../bench/bench_ompss_backend.pdb"
  "CMakeFiles/bench_ompss_backend.dir/bench_ompss_backend.cpp.o"
  "CMakeFiles/bench_ompss_backend.dir/bench_ompss_backend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ompss_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
