# Empty compiler generated dependencies file for bench_ompss_backend.
# This may be replaced when dependencies are built.
