file(REMOVE_RECURSE
  "../bench/bench_fig8_abaqus"
  "../bench/bench_fig8_abaqus.pdb"
  "CMakeFiles/bench_fig8_abaqus.dir/bench_fig8_abaqus.cpp.o"
  "CMakeFiles/bench_fig8_abaqus.dir/bench_fig8_abaqus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_abaqus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
