file(REMOVE_RECURSE
  "../bench/bench_fig7_cholesky"
  "../bench/bench_fig7_cholesky.pdb"
  "CMakeFiles/bench_fig7_cholesky.dir/bench_fig7_cholesky.cpp.o"
  "CMakeFiles/bench_fig7_cholesky.dir/bench_fig7_cholesky.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
