file(REMOVE_RECURSE
  "../bench/bench_ablation_tiling"
  "../bench/bench_ablation_tiling.pdb"
  "CMakeFiles/bench_ablation_tiling.dir/bench_ablation_tiling.cpp.o"
  "CMakeFiles/bench_ablation_tiling.dir/bench_ablation_tiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
