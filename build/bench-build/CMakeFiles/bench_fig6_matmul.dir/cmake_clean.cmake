file(REMOVE_RECURSE
  "../bench/bench_fig6_matmul"
  "../bench/bench_fig6_matmul.pdb"
  "CMakeFiles/bench_fig6_matmul.dir/bench_fig6_matmul.cpp.o"
  "CMakeFiles/bench_fig6_matmul.dir/bench_fig6_matmul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
