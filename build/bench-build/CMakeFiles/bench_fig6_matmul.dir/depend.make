# Empty dependencies file for bench_fig6_matmul.
# This may be replaced when dependencies are built.
