# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_threading[1]_include.cmake")
include("/root/repo/build/tests/test_interconnect[1]_include.cmake")
include("/root/repo/build/tests/test_hsblas[1]_include.cmake")
include("/root/repo/build/tests/test_core_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_apps_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_apps_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_ompss[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_apps_lu[1]_include.cmake")
include("/root/repo/build/tests/test_compat_api[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_logical_domains[1]_include.cmake")
include("/root/repo/build/tests/test_core_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_apps_cg[1]_include.cmake")
include("/root/repo/build/tests/test_paper_parity[1]_include.cmake")
include("/root/repo/build/tests/test_sim_details[1]_include.cmake")
include("/root/repo/build/tests/test_apps_variations[1]_include.cmake")
include("/root/repo/build/tests/test_storage_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_metamorphic[1]_include.cmake")
include("/root/repo/build/tests/test_ompss_extra[1]_include.cmake")
include("/root/repo/build/tests/test_threaded_pacing[1]_include.cmake")
