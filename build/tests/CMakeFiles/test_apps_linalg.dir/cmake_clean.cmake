file(REMOVE_RECURSE
  "CMakeFiles/test_apps_linalg.dir/test_apps_linalg.cpp.o"
  "CMakeFiles/test_apps_linalg.dir/test_apps_linalg.cpp.o.d"
  "test_apps_linalg"
  "test_apps_linalg.pdb"
  "test_apps_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
