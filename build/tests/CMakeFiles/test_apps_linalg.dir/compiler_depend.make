# Empty compiler generated dependencies file for test_apps_linalg.
# This may be replaced when dependencies are built.
