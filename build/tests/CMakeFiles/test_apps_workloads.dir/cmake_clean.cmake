file(REMOVE_RECURSE
  "CMakeFiles/test_apps_workloads.dir/test_apps_workloads.cpp.o"
  "CMakeFiles/test_apps_workloads.dir/test_apps_workloads.cpp.o.d"
  "test_apps_workloads"
  "test_apps_workloads.pdb"
  "test_apps_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
