# Empty compiler generated dependencies file for test_apps_workloads.
# This may be replaced when dependencies are built.
