file(REMOVE_RECURSE
  "CMakeFiles/test_apps_cg.dir/test_apps_cg.cpp.o"
  "CMakeFiles/test_apps_cg.dir/test_apps_cg.cpp.o.d"
  "test_apps_cg"
  "test_apps_cg.pdb"
  "test_apps_cg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
