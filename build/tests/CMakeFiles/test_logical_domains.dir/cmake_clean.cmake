file(REMOVE_RECURSE
  "CMakeFiles/test_logical_domains.dir/test_logical_domains.cpp.o"
  "CMakeFiles/test_logical_domains.dir/test_logical_domains.cpp.o.d"
  "test_logical_domains"
  "test_logical_domains.pdb"
  "test_logical_domains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logical_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
