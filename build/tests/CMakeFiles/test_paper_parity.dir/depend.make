# Empty dependencies file for test_paper_parity.
# This may be replaced when dependencies are built.
