file(REMOVE_RECURSE
  "CMakeFiles/test_paper_parity.dir/test_paper_parity.cpp.o"
  "CMakeFiles/test_paper_parity.dir/test_paper_parity.cpp.o.d"
  "test_paper_parity"
  "test_paper_parity.pdb"
  "test_paper_parity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
