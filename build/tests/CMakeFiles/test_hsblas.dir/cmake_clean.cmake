file(REMOVE_RECURSE
  "CMakeFiles/test_hsblas.dir/test_hsblas.cpp.o"
  "CMakeFiles/test_hsblas.dir/test_hsblas.cpp.o.d"
  "test_hsblas"
  "test_hsblas.pdb"
  "test_hsblas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
