
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hsblas.cpp" "tests/CMakeFiles/test_hsblas.dir/test_hsblas.cpp.o" "gcc" "tests/CMakeFiles/test_hsblas.dir/test_hsblas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/hs_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/hsblas/CMakeFiles/hs_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ompss/CMakeFiles/hs_ompss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
