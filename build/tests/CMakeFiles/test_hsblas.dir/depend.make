# Empty dependencies file for test_hsblas.
# This may be replaced when dependencies are built.
