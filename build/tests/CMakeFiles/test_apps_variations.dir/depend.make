# Empty dependencies file for test_apps_variations.
# This may be replaced when dependencies are built.
