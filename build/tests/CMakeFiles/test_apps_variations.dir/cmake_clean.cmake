file(REMOVE_RECURSE
  "CMakeFiles/test_apps_variations.dir/test_apps_variations.cpp.o"
  "CMakeFiles/test_apps_variations.dir/test_apps_variations.cpp.o.d"
  "test_apps_variations"
  "test_apps_variations.pdb"
  "test_apps_variations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
