file(REMOVE_RECURSE
  "CMakeFiles/test_ompss_extra.dir/test_ompss_extra.cpp.o"
  "CMakeFiles/test_ompss_extra.dir/test_ompss_extra.cpp.o.d"
  "test_ompss_extra"
  "test_ompss_extra.pdb"
  "test_ompss_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompss_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
