# Empty compiler generated dependencies file for test_ompss_extra.
# This may be replaced when dependencies are built.
