file(REMOVE_RECURSE
  "CMakeFiles/test_ompss.dir/test_ompss.cpp.o"
  "CMakeFiles/test_ompss.dir/test_ompss.cpp.o.d"
  "test_ompss"
  "test_ompss.pdb"
  "test_ompss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
