# Empty compiler generated dependencies file for test_ompss.
# This may be replaced when dependencies are built.
