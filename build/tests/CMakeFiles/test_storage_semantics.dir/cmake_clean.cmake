file(REMOVE_RECURSE
  "CMakeFiles/test_storage_semantics.dir/test_storage_semantics.cpp.o"
  "CMakeFiles/test_storage_semantics.dir/test_storage_semantics.cpp.o.d"
  "test_storage_semantics"
  "test_storage_semantics.pdb"
  "test_storage_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
