# Empty dependencies file for test_apps_lu.
# This may be replaced when dependencies are built.
