file(REMOVE_RECURSE
  "CMakeFiles/test_apps_lu.dir/test_apps_lu.cpp.o"
  "CMakeFiles/test_apps_lu.dir/test_apps_lu.cpp.o.d"
  "test_apps_lu"
  "test_apps_lu.pdb"
  "test_apps_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
