file(REMOVE_RECURSE
  "CMakeFiles/test_threaded_pacing.dir/test_threaded_pacing.cpp.o"
  "CMakeFiles/test_threaded_pacing.dir/test_threaded_pacing.cpp.o.d"
  "test_threaded_pacing"
  "test_threaded_pacing.pdb"
  "test_threaded_pacing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
