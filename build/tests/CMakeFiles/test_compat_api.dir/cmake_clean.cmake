file(REMOVE_RECURSE
  "CMakeFiles/test_compat_api.dir/test_compat_api.cpp.o"
  "CMakeFiles/test_compat_api.dir/test_compat_api.cpp.o.d"
  "test_compat_api"
  "test_compat_api.pdb"
  "test_compat_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compat_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
