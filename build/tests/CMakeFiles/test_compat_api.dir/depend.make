# Empty dependencies file for test_compat_api.
# This may be replaced when dependencies are built.
