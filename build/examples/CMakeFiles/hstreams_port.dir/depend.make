# Empty dependencies file for hstreams_port.
# This may be replaced when dependencies are built.
