file(REMOVE_RECURSE
  "CMakeFiles/hstreams_port.dir/hstreams_port.cpp.o"
  "CMakeFiles/hstreams_port.dir/hstreams_port.cpp.o.d"
  "hstreams_port"
  "hstreams_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hstreams_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
