file(REMOVE_RECURSE
  "CMakeFiles/ompss_dataflow.dir/ompss_dataflow.cpp.o"
  "CMakeFiles/ompss_dataflow.dir/ompss_dataflow.cpp.o.d"
  "ompss_dataflow"
  "ompss_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompss_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
