# Empty compiler generated dependencies file for ompss_dataflow.
# This may be replaced when dependencies are built.
