file(REMOVE_RECURSE
  "CMakeFiles/rtm_pipeline.dir/rtm_pipeline.cpp.o"
  "CMakeFiles/rtm_pipeline.dir/rtm_pipeline.cpp.o.d"
  "rtm_pipeline"
  "rtm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
