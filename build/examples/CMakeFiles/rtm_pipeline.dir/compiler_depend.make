# Empty compiler generated dependencies file for rtm_pipeline.
# This may be replaced when dependencies are built.
