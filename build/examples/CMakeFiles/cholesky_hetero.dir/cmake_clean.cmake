file(REMOVE_RECURSE
  "CMakeFiles/cholesky_hetero.dir/cholesky_hetero.cpp.o"
  "CMakeFiles/cholesky_hetero.dir/cholesky_hetero.cpp.o.d"
  "cholesky_hetero"
  "cholesky_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
