# Empty dependencies file for cholesky_hetero.
# This may be replaced when dependencies are built.
