# Empty compiler generated dependencies file for tuning_trace.
# This may be replaced when dependencies are built.
