file(REMOVE_RECURSE
  "CMakeFiles/tuning_trace.dir/tuning_trace.cpp.o"
  "CMakeFiles/tuning_trace.dir/tuning_trace.cpp.o.d"
  "tuning_trace"
  "tuning_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
