# Empty compiler generated dependencies file for matmul_hetero.
# This may be replaced when dependencies are built.
