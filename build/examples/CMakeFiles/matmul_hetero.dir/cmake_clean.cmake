file(REMOVE_RECURSE
  "CMakeFiles/matmul_hetero.dir/matmul_hetero.cpp.o"
  "CMakeFiles/matmul_hetero.dir/matmul_hetero.cpp.o.d"
  "matmul_hetero"
  "matmul_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
