# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_matmul_hetero]=] "/root/repo/build/examples/matmul_hetero")
set_tests_properties([=[example_matmul_hetero]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cholesky_hetero]=] "/root/repo/build/examples/cholesky_hetero")
set_tests_properties([=[example_cholesky_hetero]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_rtm_pipeline]=] "/root/repo/build/examples/rtm_pipeline")
set_tests_properties([=[example_rtm_pipeline]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_ompss_dataflow]=] "/root/repo/build/examples/ompss_dataflow")
set_tests_properties([=[example_ompss_dataflow]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_tuning_trace]=] "/root/repo/build/examples/tuning_trace")
set_tests_properties([=[example_tuning_trace]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_hstreams_port]=] "/root/repo/build/examples/hstreams_port")
set_tests_properties([=[example_hstreams_port]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
