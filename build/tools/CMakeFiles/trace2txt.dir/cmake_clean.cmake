file(REMOVE_RECURSE
  "CMakeFiles/trace2txt.dir/trace2txt.cpp.o"
  "CMakeFiles/trace2txt.dir/trace2txt.cpp.o.d"
  "trace2txt"
  "trace2txt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace2txt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
