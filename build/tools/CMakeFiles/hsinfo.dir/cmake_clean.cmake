file(REMOVE_RECURSE
  "CMakeFiles/hsinfo.dir/hsinfo.cpp.o"
  "CMakeFiles/hsinfo.dir/hsinfo.cpp.o.d"
  "hsinfo"
  "hsinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
