# Empty compiler generated dependencies file for hsinfo.
# This may be replaced when dependencies are built.
