# Empty compiler generated dependencies file for hs_ompss.
# This may be replaced when dependencies are built.
