file(REMOVE_RECURSE
  "CMakeFiles/hs_ompss.dir/ompss.cpp.o"
  "CMakeFiles/hs_ompss.dir/ompss.cpp.o.d"
  "libhs_ompss.a"
  "libhs_ompss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_ompss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
