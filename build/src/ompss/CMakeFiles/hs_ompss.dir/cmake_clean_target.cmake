file(REMOVE_RECURSE
  "libhs_ompss.a"
)
