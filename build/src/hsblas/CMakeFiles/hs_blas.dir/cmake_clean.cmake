file(REMOVE_RECURSE
  "CMakeFiles/hs_blas.dir/kernels.cpp.o"
  "CMakeFiles/hs_blas.dir/kernels.cpp.o.d"
  "CMakeFiles/hs_blas.dir/reference.cpp.o"
  "CMakeFiles/hs_blas.dir/reference.cpp.o.d"
  "libhs_blas.a"
  "libhs_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
