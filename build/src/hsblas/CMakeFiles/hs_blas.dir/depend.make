# Empty dependencies file for hs_blas.
# This may be replaced when dependencies are built.
