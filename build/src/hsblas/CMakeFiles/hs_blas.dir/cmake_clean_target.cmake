file(REMOVE_RECURSE
  "libhs_blas.a"
)
