
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_api.cpp" "src/core/CMakeFiles/hs_core.dir/app_api.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/app_api.cpp.o.d"
  "/root/repo/src/core/buffer.cpp" "src/core/CMakeFiles/hs_core.dir/buffer.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/buffer.cpp.o.d"
  "/root/repo/src/core/hstreams_compat.cpp" "src/core/CMakeFiles/hs_core.dir/hstreams_compat.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/hstreams_compat.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/hs_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/task_context.cpp" "src/core/CMakeFiles/hs_core.dir/task_context.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/task_context.cpp.o.d"
  "/root/repo/src/core/threaded_executor.cpp" "src/core/CMakeFiles/hs_core.dir/threaded_executor.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/threaded_executor.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/hs_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/hs_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/hs_threading.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
