file(REMOVE_RECURSE
  "CMakeFiles/hs_core.dir/app_api.cpp.o"
  "CMakeFiles/hs_core.dir/app_api.cpp.o.d"
  "CMakeFiles/hs_core.dir/buffer.cpp.o"
  "CMakeFiles/hs_core.dir/buffer.cpp.o.d"
  "CMakeFiles/hs_core.dir/hstreams_compat.cpp.o"
  "CMakeFiles/hs_core.dir/hstreams_compat.cpp.o.d"
  "CMakeFiles/hs_core.dir/runtime.cpp.o"
  "CMakeFiles/hs_core.dir/runtime.cpp.o.d"
  "CMakeFiles/hs_core.dir/task_context.cpp.o"
  "CMakeFiles/hs_core.dir/task_context.cpp.o.d"
  "CMakeFiles/hs_core.dir/threaded_executor.cpp.o"
  "CMakeFiles/hs_core.dir/threaded_executor.cpp.o.d"
  "CMakeFiles/hs_core.dir/trace.cpp.o"
  "CMakeFiles/hs_core.dir/trace.cpp.o.d"
  "libhs_core.a"
  "libhs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
