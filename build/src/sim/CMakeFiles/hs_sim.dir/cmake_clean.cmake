file(REMOVE_RECURSE
  "CMakeFiles/hs_sim.dir/platform.cpp.o"
  "CMakeFiles/hs_sim.dir/platform.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sim_executor.cpp.o"
  "CMakeFiles/hs_sim.dir/sim_executor.cpp.o.d"
  "libhs_sim.a"
  "libhs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
