file(REMOVE_RECURSE
  "CMakeFiles/hs_apps.dir/abaqus.cpp.o"
  "CMakeFiles/hs_apps.dir/abaqus.cpp.o.d"
  "CMakeFiles/hs_apps.dir/cg.cpp.o"
  "CMakeFiles/hs_apps.dir/cg.cpp.o.d"
  "CMakeFiles/hs_apps.dir/cholesky.cpp.o"
  "CMakeFiles/hs_apps.dir/cholesky.cpp.o.d"
  "CMakeFiles/hs_apps.dir/lu.cpp.o"
  "CMakeFiles/hs_apps.dir/lu.cpp.o.d"
  "CMakeFiles/hs_apps.dir/matmul.cpp.o"
  "CMakeFiles/hs_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/hs_apps.dir/rtm.cpp.o"
  "CMakeFiles/hs_apps.dir/rtm.cpp.o.d"
  "CMakeFiles/hs_apps.dir/supernode.cpp.o"
  "CMakeFiles/hs_apps.dir/supernode.cpp.o.d"
  "libhs_apps.a"
  "libhs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
