file(REMOVE_RECURSE
  "libhs_apps.a"
)
