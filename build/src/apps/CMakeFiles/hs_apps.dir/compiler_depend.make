# Empty compiler generated dependencies file for hs_apps.
# This may be replaced when dependencies are built.
