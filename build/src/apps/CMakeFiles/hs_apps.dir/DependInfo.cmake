
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/abaqus.cpp" "src/apps/CMakeFiles/hs_apps.dir/abaqus.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/abaqus.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/hs_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/cholesky.cpp" "src/apps/CMakeFiles/hs_apps.dir/cholesky.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/cholesky.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/hs_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/hs_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/matmul.cpp.o.d"
  "/root/repo/src/apps/rtm.cpp" "src/apps/CMakeFiles/hs_apps.dir/rtm.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/rtm.cpp.o.d"
  "/root/repo/src/apps/supernode.cpp" "src/apps/CMakeFiles/hs_apps.dir/supernode.cpp.o" "gcc" "src/apps/CMakeFiles/hs_apps.dir/supernode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hsblas/CMakeFiles/hs_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/hs_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
