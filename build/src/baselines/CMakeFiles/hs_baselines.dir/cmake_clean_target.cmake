file(REMOVE_RECURSE
  "libhs_baselines.a"
)
