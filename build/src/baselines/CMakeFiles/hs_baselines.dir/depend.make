# Empty dependencies file for hs_baselines.
# This may be replaced when dependencies are built.
