file(REMOVE_RECURSE
  "CMakeFiles/hs_baselines.dir/auto_offload.cpp.o"
  "CMakeFiles/hs_baselines.dir/auto_offload.cpp.o.d"
  "CMakeFiles/hs_baselines.dir/cuda_like.cpp.o"
  "CMakeFiles/hs_baselines.dir/cuda_like.cpp.o.d"
  "CMakeFiles/hs_baselines.dir/magma_like.cpp.o"
  "CMakeFiles/hs_baselines.dir/magma_like.cpp.o.d"
  "CMakeFiles/hs_baselines.dir/omp_offload.cpp.o"
  "CMakeFiles/hs_baselines.dir/omp_offload.cpp.o.d"
  "CMakeFiles/hs_baselines.dir/opencl_like.cpp.o"
  "CMakeFiles/hs_baselines.dir/opencl_like.cpp.o.d"
  "libhs_baselines.a"
  "libhs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
