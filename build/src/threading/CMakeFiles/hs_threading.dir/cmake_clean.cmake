file(REMOVE_RECURSE
  "CMakeFiles/hs_threading.dir/team.cpp.o"
  "CMakeFiles/hs_threading.dir/team.cpp.o.d"
  "CMakeFiles/hs_threading.dir/thread_pool.cpp.o"
  "CMakeFiles/hs_threading.dir/thread_pool.cpp.o.d"
  "libhs_threading.a"
  "libhs_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
