# Empty dependencies file for hs_threading.
# This may be replaced when dependencies are built.
