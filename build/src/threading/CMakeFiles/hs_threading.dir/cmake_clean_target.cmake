file(REMOVE_RECURSE
  "libhs_threading.a"
)
