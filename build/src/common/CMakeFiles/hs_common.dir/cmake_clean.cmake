file(REMOVE_RECURSE
  "CMakeFiles/hs_common.dir/log.cpp.o"
  "CMakeFiles/hs_common.dir/log.cpp.o.d"
  "libhs_common.a"
  "libhs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
